// Package kvtest is the reusable conformance suite for the kv.DB
// contract: any implementation — the single-cluster *kv.Store, the pooled
// pool.Router, or a future one — must pass Run. The cases pin the parts
// of the contract a client may rely on across implementations:
//
//   - the acknowledgment discipline (Ack.Durable at return for the
//     per-operation strategies, at the commit point for the batched ones,
//     with pending writes visible before durable),
//   - Apply's one-Ack-at-commit-point batch semantics,
//   - Scan's global key ordering and limit handling,
//   - MultiGet's input-order results,
//   - Sync as a universal commit point, and
//   - crash/recovery visibility: an acknowledged write survives every
//     shard of the service crashing and recovering; an unacknowledged
//     write may be dropped, never corrupted, and
//   - fault-campaign visibility: the crash/partition/degrade error
//     taxonomy (ErrShardDown vs ErrUnavailable vs cost-only), partial
//     results for partitioned fan-outs, lossless heals, and
//     old-or-new-never-garbage under correlated whole-service crashes.
//
// The suite deliberately avoids implementation-shaped assertions (shard
// placement, exact commit counts, busy-time accounting): those belong to
// the implementations' own tests.
package kvtest

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"cxl0/internal/core"
	"cxl0/internal/faults"
	"cxl0/internal/kv"
	"cxl0/internal/obs"
)

// Factory returns a fresh, empty DB built over the given per-cluster
// store configuration. Implementations with more topology (e.g. a pooled
// router's cluster count) fix the extra dimensions inside the factory.
type Factory func(t *testing.T, cfg kv.Config) kv.DB

// Run exercises the full kv.DB contract against DBs produced by f.
func Run(t *testing.T, f Factory) {
	t.Run("AckDurability", func(t *testing.T) { testAckDurability(t, f) })
	t.Run("ApplyBatch", func(t *testing.T) { testApplyBatch(t, f) })
	t.Run("ScanLimitOrdering", func(t *testing.T) { testScanLimitOrdering(t, f) })
	t.Run("MultiGet", func(t *testing.T) { testMultiGet(t, f) })
	t.Run("SyncCommits", func(t *testing.T) { testSyncCommits(t, f) })
	t.Run("CrashRecoverVisibility", func(t *testing.T) { testCrashRecoverVisibility(t, f) })
	t.Run("PipelinedAckOrder", func(t *testing.T) { testPipelinedAckOrder(t, f) })
	t.Run("CachedReadVisibility", func(t *testing.T) { testCachedReadVisibility(t, f) })
	t.Run("FaultCampaignVisibility", func(t *testing.T) { testFaultCampaignVisibility(t, f) })
	t.Run("CompactVisibility", func(t *testing.T) { testCompactVisibility(t, f) })
	t.Run("AutoCompactCapacity", func(t *testing.T) { testAutoCompactCapacity(t, f) })
	t.Run("BadArguments", func(t *testing.T) { testBadArguments(t, f) })
	t.Run("ObservabilityAgreement", func(t *testing.T) { testObservabilityAgreement(t, f) })
	t.Run("DeterministicReplay", func(t *testing.T) { DeterministicReplay(t, f) })
}

func cfgFor(strat kv.Strategy) kv.Config {
	return kv.Config{Shards: 2, Strategy: strat, Batch: 4, Capacity: 512, Seed: 21, EvictEvery: 3}
}

// crashRecoverAll cycles every shard of the service through one
// crash+recover.
func crashRecoverAll(t *testing.T, db kv.DB) {
	t.Helper()
	for i := 0; i < db.NumShards(); i++ {
		db.Crash(i)
		if _, err := db.Recover(i); err != nil {
			t.Fatalf("recover shard %d: %v", i, err)
		}
	}
}

// testAckDurability pins the ack discipline: per-operation strategies
// acknowledge at return, batched ones at the commit point — and a
// pending batched write is visible (dirty-read semantics) before it is
// durable.
func testAckDurability(t *testing.T, f Factory) {
	for _, strat := range kv.Strategies {
		t.Run(strat.String(), func(t *testing.T) {
			db := f(t, cfgFor(strat))
			const n = 10
			sawPending := false
			for k := core.Val(0); k < n; k++ {
				ack, err := db.Put(k, k+1)
				if err != nil {
					t.Fatalf("put %d: %v", k, err)
				}
				if strat.Durable() && !ack.Durable {
					t.Fatalf("put %d not acked at return under %v", k, strat)
				}
				if !ack.Durable {
					sawPending = true
					// Visible before durable.
					if v, ok, err := db.Get(k); err != nil || !ok || v != k+1 {
						t.Fatalf("pending write %d invisible: (%d, %v, %v)", k, v, ok, err)
					}
				}
			}
			if strat.Batched() && !sawPending {
				t.Fatalf("%v acked every write at return; batched strategies must defer", strat)
			}
			if err := db.Sync(); err != nil {
				t.Fatal(err)
			}
			if m := db.Metrics(); m.Acked != n {
				t.Fatalf("acked = %d after sync, want %d", m.Acked, n)
			}
		})
	}
}

// testPipelinedAckOrder pins the asynchronous commit pipeline's client
// contract (Config.PipelineDepth > 1 with a batched strategy): no write
// is durable at return; reads respect the acked watermark — a freshly
// overwritten key keeps serving its last acknowledged value until the
// overwrite's batch commits; acks fire in batch order at their batches'
// commit points; Sync drains every in-flight flush; and a whole-service
// crash with flushes in flight recovers at least the acked prefix, with
// reads old-or-new, never garbage.
func testPipelinedAckOrder(t *testing.T, f Factory) {
	for _, strat := range []kv.Strategy{kv.GroupCommit, kv.RangedCommit} {
		t.Run(strat.String(), func(t *testing.T) {
			cfg := cfgFor(strat)
			cfg.PipelineDepth = 3
			db := f(t, cfg)
			var sub *obs.Sub
			if o, ok := db.(observable); ok {
				bus := obs.NewBus(obs.DefaultBusSize)
				sub = bus.Subscribe()
				o.Observe(obs.NewRecorder(bus, nil))
			}

			const n = 48
			for k := core.Val(0); k < n; k++ {
				ack, err := db.Put(k, 1000+k)
				if err != nil {
					t.Fatalf("put %d: %v", k, err)
				}
				if ack.Durable {
					t.Fatalf("pipelined put %d acked durable at return", k)
				}
			}
			if err := db.Sync(); err != nil {
				t.Fatal(err)
			}
			m := db.Metrics()
			if m.Acked != n {
				t.Fatalf("acked = %d after sync, want %d", m.Acked, n)
			}
			for i, inflight := range m.PerShardInFlight {
				if inflight != 0 {
					t.Fatalf("shard %d still has %d flushes in flight after Sync", i, inflight)
				}
			}
			if m.PipelinedCommits == 0 {
				t.Fatal("no commit flush went through the pipeline")
			}

			// The watermark gate, deterministically: Sync left every open
			// batch empty, so this one overwrite sits unacknowledged in a
			// fresh open batch — reads must keep serving the acked value.
			if _, err := db.Put(0, 9000); err != nil {
				t.Fatal(err)
			}
			if v, ok, err := db.Get(0); err != nil || !ok || v != 1000 {
				t.Fatalf("watermark get = (%d, %v, %v), want the acked 1000", v, ok, err)
			}
			pairs, err := db.Scan(0, 1, 10)
			if err != nil {
				t.Fatal(err)
			}
			if len(pairs) != 1 || pairs[0].Val != 1000 {
				t.Fatalf("watermark scan = %+v, want [{0 1000}]", pairs)
			}
			if err := db.Sync(); err != nil {
				t.Fatal(err)
			}
			if v, ok, err := db.Get(0); err != nil || !ok || v != 9000 {
				t.Fatalf("post-sync get = (%d, %v, %v), want 9000", v, ok, err)
			}

			// Overwrite everything and crash with flushes in flight. The
			// acked watermark read before the crash is each key's floor:
			// recovery must land on that value or the newer one.
			for k := core.Val(0); k < n; k++ {
				if _, err := db.Put(k, 5000+k); err != nil {
					t.Fatalf("overwrite %d: %v", k, err)
				}
			}
			// Only the ranged strategy is guaranteed to stack depth: a GPF
			// occupies the whole fabric, so any shard's global flush
			// advances every other shard's busy clock past its in-flight
			// completion points — global fences serialize the pipeline.
			if strat == kv.RangedCommit {
				if got := db.Metrics().MaxInFlight; got < 2 {
					t.Fatalf("max in-flight depth = %d; the pipeline never overlapped flushes", got)
				}
			}
			pre := make([]core.Val, n)
			for k := core.Val(0); k < n; k++ {
				v, ok, err := db.Get(k)
				if err != nil || !ok {
					t.Fatalf("pre-crash get %d: (%v, %v)", k, ok, err)
				}
				pre[k] = v
			}
			ackedBefore := db.Metrics().Acked
			crashRecoverAll(t, db)
			if got := db.Metrics().Acked; got < ackedBefore {
				t.Fatalf("recovery lost acknowledged writes: %d -> %d", ackedBefore, got)
			}
			for k := core.Val(0); k < n; k++ {
				v, ok, err := db.Get(k)
				if err != nil || !ok {
					t.Fatalf("post-crash get %d: (%v, %v)", k, ok, err)
				}
				if v != pre[k] && v != 5000+k {
					t.Fatalf("post-crash get %d = %d, want acked %d or newer %d", k, v, pre[k], 5000+k)
				}
			}

			// Commit events carry the pipeline telemetry: depth within
			// [1, PipelineDepth], and per shard the commit points — each
			// batch's ack time — never regress: acks fire in batch order.
			if sub != nil {
				lastEnd := map[int]float64{}
				commits := 0
				for _, e := range sub.Poll(0) {
					if e.Kind != obs.KindCommit {
						continue
					}
					commits++
					if e.Depth < 1 || e.Depth > cfg.PipelineDepth {
						t.Fatalf("commit depth %d outside [1, %d]", e.Depth, cfg.PipelineDepth)
					}
					if e.EndNS < lastEnd[e.Shard] {
						t.Fatalf("shard %d commit point %g regressed below %g", e.Shard, e.EndNS, lastEnd[e.Shard])
					}
					lastEnd[e.Shard] = e.EndNS
				}
				if commits == 0 {
					t.Fatal("no commit events observed")
				}
			}
		})
	}
}

// testCachedReadVisibility pins the node-local read cache's coherence
// contract (kv.Config.ReadCache > 0, with the prefetcher on): a cached
// read is indistinguishable from an uncached one. Read-your-writes holds
// through Put/Delete/Apply; visibility is unchanged across compaction,
// rebalancing and partition/heal; reads stay monotonic across a
// crash/recovery sweep even when eviction churn forces the cache to
// refill from the store (a stale survivor would read backwards in time);
// and under the pipelined batched strategies at K ∈ {2, 4} a cached
// value tracks the acked watermark — never a value a crash could take
// back — flipping to the overwrite only at its batch's retirement.
func testCachedReadVisibility(t *testing.T, f Factory) {
	for _, strat := range kv.Strategies {
		t.Run(strat.String(), func(t *testing.T) {
			cfg := cfgFor(strat)
			// A tiny cache: eviction churn keeps the monotonic checks
			// honest — a stale entry cannot hide behind an LRU that never
			// refills from the store.
			cfg.ReadCache = 8
			cfg.Prefetch = true
			db := f(t, cfg)
			const n = 24
			want := map[core.Val]core.Val{} // 0 = deleted
			// expect reads every key twice — the second read is the cached
			// path when the first filled — and demands the same answer.
			expect := func(stage string) {
				t.Helper()
				for k := core.Val(0); k < n; k++ {
					for pass := 0; pass < 2; pass++ {
						v, ok, err := db.Get(k)
						if err != nil {
							t.Fatalf("%s: get %d pass %d: %v", stage, k, pass, err)
						}
						if w := want[k]; (w == 0) == ok || (ok && v != w) {
							t.Fatalf("%s: get %d pass %d = (%d, %v), want %d", stage, k, pass, v, ok, w)
						}
					}
				}
			}

			// Read-your-writes through every write operation.
			for k := core.Val(0); k < n; k++ {
				if _, err := db.Put(k, 100+k); err != nil {
					t.Fatal(err)
				}
				want[k] = 100 + k
			}
			expect("initial")
			for k := core.Val(0); k < 6; k++ {
				if _, err := db.Put(k, 200+k); err != nil {
					t.Fatal(err)
				}
				want[k] = 200 + k
			}
			expect("overwrite")
			if _, err := db.Delete(2); err != nil {
				t.Fatal(err)
			}
			want[2] = 0
			if _, err := db.Apply(new(kv.Batch).Put(3, 333).Delete(4)); err != nil {
				t.Fatal(err)
			}
			want[3], want[4] = 333, 0
			expect("delete+apply")
			if err := db.Sync(); err != nil {
				t.Fatal(err)
			}

			// Background reorganization changes placement, never visibility.
			if _, err := db.Compact(); err != nil {
				t.Fatal(err)
			}
			expect("compacted")
			if _, err := db.Rebalance(); err != nil {
				t.Fatal(err)
			}
			expect("rebalanced")

			// Crash/recovery: overwrite a few keys unsynced (under the
			// batched strategies some are unacknowledged), sweep every
			// shard, then pin monotonic reads: whatever the first
			// post-recovery read answers — old or new — later reads must
			// repeat, including after churn evicts and refills the cache.
			for k := core.Val(8); k < 14; k++ {
				if _, err := db.Put(k, 500+k); err != nil {
					t.Fatal(err)
				}
				if v, ok, err := db.Get(k); err != nil || !ok || v != 500+k {
					t.Fatalf("pre-crash read-your-write %d: (%d, %v, %v)", k, v, ok, err)
				}
			}
			crashRecoverAll(t, db)
			for k := core.Val(8); k < 14; k++ {
				v, ok, err := db.Get(k)
				if err != nil || !ok {
					t.Fatalf("post-recovery get %d: (%v, %v)", k, ok, err)
				}
				if v != want[k] && v != 500+k {
					t.Fatalf("post-recovery get %d = %d, want acked %d or newer %d", k, v, want[k], 500+k)
				}
				want[k] = v
			}
			for k := core.Val(14); k < n; k++ { // churn the tiny LRU dry
				if _, _, err := db.Get(k); err != nil {
					t.Fatal(err)
				}
			}
			expect("post-recovery")

			// Partition/heal: denied reads are denied, healed reads exact.
			db.Partition(0)
			for k := core.Val(0); k < n; k++ {
				_, _, err := db.Get(k)
				if err != nil && !errors.Is(err, kv.ErrUnavailable) {
					t.Fatalf("partitioned get %d: %v", k, err)
				}
			}
			db.Heal(0)
			expect("healed")
		})
	}

	// Watermark gating under the commit pipeline: the cached copy of a
	// key must flip to an overwrite only when the overwrite's batch
	// retires (its flush is acknowledged) — the same instant the uncached
	// read path flips.
	for _, strat := range []kv.Strategy{kv.GroupCommit, kv.RangedCommit} {
		for _, depth := range []int{2, 4} {
			t.Run(fmt.Sprintf("%v/K%d", strat, depth), func(t *testing.T) {
				cfg := cfgFor(strat)
				cfg.PipelineDepth = depth
				cfg.ReadCache = 32
				cfg.Prefetch = true
				db := f(t, cfg)
				const n = 16
				for k := core.Val(0); k < n; k++ {
					if _, err := db.Put(k, 1000+k); err != nil {
						t.Fatal(err)
					}
				}
				if err := db.Sync(); err != nil {
					t.Fatal(err)
				}
				for k := core.Val(0); k < n; k++ { // warm the cache on acked values
					if v, ok, err := db.Get(k); err != nil || !ok || v != 1000+k {
						t.Fatalf("warm get %d: (%d, %v, %v)", k, v, ok, err)
					}
				}
				// One unacknowledged overwrite in a fresh open batch: both
				// the cached and uncached path must keep serving the acked
				// value until Sync retires it.
				if _, err := db.Put(0, 9000); err != nil {
					t.Fatal(err)
				}
				for pass := 0; pass < 2; pass++ {
					if v, ok, err := db.Get(0); err != nil || !ok || v != 1000 {
						t.Fatalf("watermark get pass %d = (%d, %v, %v), want the acked 1000", pass, v, ok, err)
					}
				}
				if err := db.Sync(); err != nil {
					t.Fatal(err)
				}
				for pass := 0; pass < 2; pass++ {
					if v, ok, err := db.Get(0); err != nil || !ok || v != 9000 {
						t.Fatalf("post-sync get pass %d = (%d, %v, %v), want 9000", pass, v, ok, err)
					}
				}
				// Streamed overwrites with reads interleaved: every answer
				// is the acked old value or the new one, and after the
				// drain every key reads new — twice.
				for k := core.Val(0); k < n; k++ {
					if _, err := db.Put(k, 5000+k); err != nil {
						t.Fatal(err)
					}
					v, ok, err := db.Get(k)
					if err != nil || !ok {
						t.Fatalf("in-flight get %d: (%v, %v)", k, ok, err)
					}
					old := core.Val(1000 + k)
					if k == 0 {
						old = 9000
					}
					if v != old && v != 5000+k {
						t.Fatalf("in-flight get %d = %d, want acked %d or new %d", k, v, old, 5000+k)
					}
				}
				if err := db.Sync(); err != nil {
					t.Fatal(err)
				}
				for k := core.Val(0); k < n; k++ {
					for pass := 0; pass < 2; pass++ {
						if v, ok, err := db.Get(k); err != nil || !ok || v != 5000+k {
							t.Fatalf("drained get %d pass %d = (%d, %v, %v), want %d", k, pass, v, ok, err, 5000+k)
						}
					}
				}
			})
		}
	}
}

// testApplyBatch pins Apply's contract: ops apply in order, the batch is
// acknowledged with one Ack at its commit point, and on success the whole
// batch is durable under every strategy — proven by crashing every shard
// and finding all of it again.
func testApplyBatch(t *testing.T, f Factory) {
	for _, strat := range kv.Strategies {
		t.Run(strat.String(), func(t *testing.T) {
			db := f(t, cfgFor(strat))
			b := new(kv.Batch)
			const n = 12
			for k := core.Val(0); k < n; k++ {
				b.Put(k, k+100)
			}
			b.Put(3, 333)  // overwrite inside the batch: last write wins
			b.Delete(5)    // put-then-delete inside the batch: deleted
			b.Put(n, 777)  // delete-then... fresh key at the end
			b.Delete(9999) // deleting an absent key is legal
			ack, err := db.Apply(b)
			if err != nil {
				t.Fatal(err)
			}
			if !ack.Durable {
				t.Fatalf("apply returned non-durable ack %+v under %v", ack, strat)
			}
			check := func() {
				t.Helper()
				for k := core.Val(0); k <= n; k++ {
					want, present := k+100, true
					switch k {
					case 3:
						want = 333
					case 5:
						present = false
					case n:
						want = 777
					}
					v, ok, err := db.Get(k)
					if err != nil || ok != present || (present && v != want) {
						t.Fatalf("get %d = (%d, %v, %v), want (%d, %v)", k, v, ok, err, want, present)
					}
				}
			}
			check()
			// The commit point has passed: the batch survives every shard
			// crashing.
			crashRecoverAll(t, db)
			check()
			if m := db.Metrics(); m.Batches == 0 {
				t.Fatal("Apply not counted in Metrics.Batches")
			}
			// An empty batch is a durable no-op.
			if ack, err := db.Apply(new(kv.Batch)); err != nil || !ack.Durable {
				t.Fatalf("empty apply: %+v, %v", ack, err)
			}
		})
	}
}

// testScanLimitOrdering pins Scan: results in global key order, half-open
// range, limit keeps the smallest keys, limit 0 means unlimited.
func testScanLimitOrdering(t *testing.T, f Factory) {
	db := f(t, cfgFor(kv.RangedCommit))
	const n = 30
	// Insert in a scattered order so result order cannot be insertion
	// order by accident.
	for i := 0; i < n; i++ {
		k := core.Val((i * 17) % n)
		if _, err := db.Put(k, k+1); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Sync(); err != nil {
		t.Fatal(err)
	}
	pairs, err := db.Scan(5, 25, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 20 {
		t.Fatalf("scan [5,25) returned %d pairs, want 20", len(pairs))
	}
	for i, p := range pairs {
		if want := core.Val(5 + i); p.Key != want || p.Val != want+1 {
			t.Fatalf("pair %d = %+v, want key %d in order", i, p, want)
		}
	}
	limited, err := db.Scan(5, 25, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(limited) != 6 {
		t.Fatalf("limited scan returned %d pairs, want 6", len(limited))
	}
	for i, p := range limited {
		if want := core.Val(5 + i); p.Key != want {
			t.Fatalf("limited pair %d = %+v; the limit must keep the smallest keys", i, p)
		}
	}
	if empty, err := db.Scan(100, 200, 0); err != nil || len(empty) != 0 {
		t.Fatalf("empty-range scan = %v, %v", empty, err)
	}
}

// testMultiGet pins MultiGet: one result per key, in input order,
// including misses and repeats.
func testMultiGet(t *testing.T, f Factory) {
	db := f(t, cfgFor(kv.StoreFlush))
	for k := core.Val(0); k < 20; k++ {
		if _, err := db.Put(k, k*2+1); err != nil {
			t.Fatal(err)
		}
	}
	keys := []core.Val{13, 999, 2, 13, 0}
	res, err := db.MultiGet(keys)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(keys) {
		t.Fatalf("%d results for %d keys", len(res), len(keys))
	}
	for i, l := range res {
		if l.Key != keys[i] {
			t.Fatalf("result %d is key %d, want %d: results must keep input order", i, l.Key, keys[i])
		}
		wantFound := keys[i] < 20
		if l.Found != wantFound || (wantFound && l.Val != keys[i]*2+1) {
			t.Fatalf("result %d = %+v", i, l)
		}
	}
	if res, err := db.MultiGet(nil); err != nil || len(res) != 0 {
		t.Fatalf("empty MultiGet = %v, %v", res, err)
	}
}

// testSyncCommits pins Sync as the universal commit point: after Sync
// returns, every prior write is acknowledged durable and survives a full
// crash/recovery sweep.
func testSyncCommits(t *testing.T, f Factory) {
	for _, strat := range []kv.Strategy{kv.GroupCommit, kv.RangedCommit, kv.MStoreEach} {
		t.Run(strat.String(), func(t *testing.T) {
			db := f(t, cfgFor(strat))
			const n = 7 // not a multiple of Batch: a batch stays open
			for k := core.Val(0); k < n; k++ {
				if _, err := db.Put(k, k+50); err != nil {
					t.Fatal(err)
				}
			}
			if err := db.Sync(); err != nil {
				t.Fatal(err)
			}
			if m := db.Metrics(); m.Acked != n {
				t.Fatalf("acked = %d after sync, want %d", m.Acked, n)
			}
			crashRecoverAll(t, db)
			for k := core.Val(0); k < n; k++ {
				v, ok, err := db.Get(k)
				if err != nil || !ok || v != k+50 {
					t.Fatalf("synced write %d lost: (%d, %v, %v)", k, v, ok, err)
				}
			}
		})
	}
}

// testCrashRecoverVisibility pins the durability invariant under every
// strategy: a write acknowledged durable survives every shard crashing
// and recovering; an unacknowledged write may be dropped by recovery but
// never corrupted — afterwards the key reads as either its old or its
// new value, nothing else.
func testCrashRecoverVisibility(t *testing.T, f Factory) {
	for _, strat := range kv.Strategies {
		t.Run(strat.String(), func(t *testing.T) {
			db := f(t, cfgFor(strat))
			const n = 16
			for k := core.Val(0); k < n; k++ {
				if _, err := db.Put(k, 1000+k); err != nil {
					t.Fatal(err)
				}
			}
			if err := db.Sync(); err != nil {
				t.Fatal(err)
			}
			// Overwrite a few keys without syncing: under the batched
			// strategies some of these are unacknowledged when the crash
			// hits.
			ackedNew := map[core.Val]bool{}
			for k := core.Val(0); k < 6; k++ {
				ack, err := db.Put(k, 2000+k)
				if err != nil {
					t.Fatal(err)
				}
				ackedNew[k] = ack.Durable
			}
			crashRecoverAll(t, db)
			for k := core.Val(0); k < n; k++ {
				v, ok, err := db.Get(k)
				if err != nil || !ok {
					t.Fatalf("key %d unreadable after recovery: (%v, %v)", k, ok, err)
				}
				old, new := 1000+k, 2000+k
				switch {
				case k >= 6:
					if v != old {
						t.Fatalf("untouched key %d = %d, want %d", k, v, old)
					}
				case ackedNew[k]:
					if v != new {
						t.Fatalf("key %d acked at %d but reads %d", k, new, v)
					}
				default:
					// Unacknowledged overwrite: old or new, never garbage.
					if v != old && v != new {
						t.Fatalf("key %d corrupted: %d (want %d or %d)", k, v, old, new)
					}
				}
			}
			// Recovering an up shard is a no-op.
			if stats, err := db.Recover(0); err != nil || stats.Recovered != 0 {
				t.Fatalf("recover of an up shard: %+v, %v", stats, err)
			}
			// The rebalancer is part of the surface: a call must not error
			// on a healthy service.
			if _, err := db.Rebalance(); err != nil {
				t.Fatalf("rebalance on healthy service: %v", err)
			}
		})
	}
}

// testFaultCampaignVisibility pins the fault-campaign surface of the
// contract: a partitioned shard denies with ErrUnavailable (never
// ErrShardDown — a partition loses nothing), fan-outs over a partition
// degrade to a PartialResultError whose delivered results are exact,
// heals are instant and lossless, degradation is cost-only, and a
// correlated crash of every shard — driven through the campaign engine —
// resolves each key to old-or-new, never garbage.
func testFaultCampaignVisibility(t *testing.T, f Factory) {
	for _, strat := range kv.Strategies {
		t.Run(strat.String(), func(t *testing.T) {
			db := f(t, cfgFor(strat))
			const n = 24
			keys := make([]core.Val, n)
			for k := core.Val(0); k < n; k++ {
				if _, err := db.Put(k, 1000+k); err != nil {
					t.Fatal(err)
				}
				keys[k] = k
			}
			if err := db.Sync(); err != nil {
				t.Fatal(err)
			}

			// Partition a shard that owns at least one of the keys (the
			// contract hides key placement, so probe).
			target, missingDirect := -1, 0
			denied := map[core.Val]bool{}
			for sh := 0; sh < db.NumShards() && target < 0; sh++ {
				db.Partition(sh)
				for k := core.Val(0); k < n; k++ {
					_, _, err := db.Get(k)
					if err == nil {
						continue
					}
					if !errors.Is(err, kv.ErrUnavailable) {
						t.Fatalf("get through partition: %v, want ErrUnavailable", err)
					}
					if errors.Is(err, kv.ErrShardDown) {
						t.Fatalf("partition masquerades as a crash: %v", err)
					}
					denied[k] = true
					missingDirect++
				}
				if missingDirect > 0 {
					target = sh
				} else {
					db.Heal(sh)
				}
			}
			if target < 0 {
				t.Fatalf("no shard owns any of %d keys", n)
			}
			h := db.Health()
			if len(h) != db.NumShards() || !h[target].Partitioned || h[target].Down {
				t.Fatalf("health does not report the partition: %+v", h[target])
			}

			// MultiGet degrades to a partial result: delivered entries are
			// exact, the error names the unavailable shards and unwraps to
			// ErrUnavailable.
			res, err := db.MultiGet(keys)
			var partial *kv.PartialResultError
			if !errors.As(err, &partial) {
				t.Fatalf("partitioned MultiGet: %v, want PartialResultError", err)
			}
			if !errors.Is(err, kv.ErrUnavailable) {
				t.Fatalf("PartialResultError must unwrap to ErrUnavailable: %v", err)
			}
			if partial.Missing != missingDirect {
				t.Fatalf("partial reports %d missing, direct probes found %d", partial.Missing, missingDirect)
			}
			// Input order is preserved: unavailable keys hold a not-found
			// placeholder, delivered entries are exact.
			if len(res) != n {
				t.Fatalf("partial MultiGet delivered %d results, want %d (placeholders included)", len(res), n)
			}
			for i, l := range res {
				if l.Key != keys[i] {
					t.Fatalf("partial result %d is key %d, want %d: input order must survive a partition", i, l.Key, keys[i])
				}
				if denied[l.Key] {
					if l.Found {
						t.Fatalf("unavailable key %d delivered as found: %+v", l.Key, l)
					}
					continue
				}
				if !l.Found || l.Val != 1000+l.Key {
					t.Fatalf("partial result corrupted: %+v", l)
				}
			}
			if len(partial.Unavailable) == 0 {
				t.Fatal("partial error names no unavailable shard")
			}
			for i, sh := range partial.Unavailable {
				if sh < 0 || sh >= db.NumShards() {
					t.Fatalf("unavailable shard %d outside [0,%d)", sh, db.NumShards())
				}
				if i > 0 && partial.Unavailable[i-1] >= sh {
					t.Fatalf("unavailable list not ascending: %v", partial.Unavailable)
				}
			}

			// Scan over the partition: same taxonomy, delivered pairs exact
			// and in order.
			pairs, err := db.Scan(0, n, 0)
			if !errors.As(err, &partial) {
				t.Fatalf("partitioned Scan: %v, want PartialResultError", err)
			}
			if partial.Missing != missingDirect {
				t.Fatalf("scan partial reports %d missing, want %d", partial.Missing, missingDirect)
			}
			if len(pairs) != n-missingDirect {
				t.Fatalf("partial Scan delivered %d pairs, want %d", len(pairs), n-missingDirect)
			}
			for i, p := range pairs {
				if p.Val != 1000+p.Key {
					t.Fatalf("partial scan pair corrupted: %+v", p)
				}
				if i > 0 && pairs[i-1].Key >= p.Key {
					t.Fatalf("partial scan out of order at %d: %v", i, pairs[i-1:i+1])
				}
			}

			// Recover of an up-but-partitioned shard stays the up-shard
			// no-op; but a shard that dies BEHIND its partition cannot
			// recover until the fabric heals — partition-heal-then-recover
			// is the only order.
			if stats, err := db.Recover(target); err != nil || stats.Recovered != 0 {
				t.Fatalf("recover of an up partitioned shard: %+v, %v, want no-op", stats, err)
			}
			db.Crash(target)
			if _, err := db.Recover(target); !errors.Is(err, kv.ErrUnavailable) {
				t.Fatalf("recover of a crashed shard behind a partition: %v, want ErrUnavailable", err)
			}
			db.Heal(target)
			if _, err := db.Recover(target); err != nil {
				t.Fatalf("recover after heal: %v", err)
			}
			if h := db.Health()[target]; h.Partitioned {
				t.Fatalf("heal did not clear the partition: %+v", h)
			}
			res, err = db.MultiGet(keys)
			if err != nil || len(res) != n {
				t.Fatalf("post-heal MultiGet: %d results, %v", len(res), err)
			}
			for _, l := range res {
				if !l.Found || l.Val != 1000+l.Key {
					t.Fatalf("post-heal result wrong: %+v — a heal must lose nothing", l)
				}
			}

			// Degradation is cost-only: reported in health, never an error.
			db.Degrade(target, 8)
			if got := db.Health()[target].DegradeFactor; got != 8 {
				t.Fatalf("degrade factor %g, want 8", got)
			}
			for k := core.Val(0); k < n; k++ {
				if v, ok, err := db.Get(k); err != nil || !ok || v != 1000+k {
					t.Fatalf("degraded get %d = (%d, %v, %v)", k, v, ok, err)
				}
			}
			db.Degrade(target, 1)

			// Correlated whole-service crash, driven through the campaign
			// engine: overwrite a few keys (some unacknowledged under the
			// batched strategies), blast every shard at one instant, recover
			// in campaign order.
			ackedNew := map[core.Val]bool{}
			for k := core.Val(0); k < 6; k++ {
				ack, err := db.Put(k, 2000+k)
				if err != nil {
					t.Fatal(err)
				}
				ackedNew[k] = ack.Durable
			}
			all := make([]int, db.NumShards())
			for i := range all {
				all[i] = i
			}
			eng := faults.New(db, &faults.Campaign{Name: "conformance", Events: []faults.Event{
				{At: 0, Action: faults.Crash, Shards: all},
				{At: 1, Action: faults.Recover, Shards: all},
			}})
			if err := eng.Step(0); err != nil {
				t.Fatal(err)
			}
			// Crashed is not partitioned: fan-outs fail whole (unacked data
			// may be lost — a partial answer could be wrong), with
			// ErrShardDown.
			if _, err := db.MultiGet(keys); !errors.Is(err, kv.ErrShardDown) {
				t.Fatalf("MultiGet over a crashed service: %v, want ErrShardDown", err)
			} else if errors.As(err, &partial) {
				t.Fatalf("crash produced a partial result: %v — only partitions degrade", err)
			}
			if err := eng.Step(1); err != nil {
				t.Fatal(err)
			}
			if s := eng.Stats(); s.Crashes != len(all) || s.Recoveries != len(all) {
				t.Fatalf("engine stats %+v, want %d crashes and recoveries", s, len(all))
			}
			for k := core.Val(0); k < n; k++ {
				v, ok, err := db.Get(k)
				if err != nil || !ok {
					t.Fatalf("key %d unreadable after correlated crash: (%v, %v)", k, ok, err)
				}
				old, new := 1000+k, 2000+k
				switch {
				case k >= 6:
					if v != old {
						t.Fatalf("untouched key %d = %d, want %d", k, v, old)
					}
				case ackedNew[k]:
					if v != new {
						t.Fatalf("key %d acked at %d but reads %d", k, new, v)
					}
				default:
					if v != old && v != new {
						t.Fatalf("key %d corrupted: %d (want %d or %d)", k, v, old, new)
					}
				}
			}
		})
	}
}

// testCompactVisibility pins Compact's contract: visibility is unchanged
// across a compaction, the compacted state survives a full crash/recovery
// sweep, and the compaction metrics (Compactions, ReclaimedSlots) are
// live and monotonic.
func testCompactVisibility(t *testing.T, f Factory) {
	for _, strat := range kv.Strategies {
		t.Run(strat.String(), func(t *testing.T) {
			db := f(t, cfgFor(strat))
			const n = 24
			for k := core.Val(0); k < n; k++ {
				if _, err := db.Put(k, 100+k); err != nil {
					t.Fatal(err)
				}
			}
			for k := core.Val(0); k < n; k += 4 {
				if _, err := db.Delete(k); err != nil {
					t.Fatal(err)
				}
			}
			for k := core.Val(1); k < n; k += 4 {
				if _, err := db.Put(k, 300+k); err != nil {
					t.Fatal(err)
				}
			}
			if err := db.Sync(); err != nil {
				t.Fatal(err)
			}
			check := func() {
				t.Helper()
				for k := core.Val(0); k < n; k++ {
					want, present := 100+k, k%4 != 0
					if k%4 == 1 {
						want = 300 + k
					}
					v, ok, err := db.Get(k)
					if err != nil || ok != present || (present && v != want) {
						t.Fatalf("get %d = (%d, %v, %v), want (%d, %v)", k, v, ok, err, want, present)
					}
				}
			}
			check()

			stats, err := db.Compact()
			if err != nil {
				t.Fatal(err)
			}
			if len(stats) == 0 {
				t.Fatal("Compact did nothing on a service with appended logs")
			}
			reclaimed := 0
			for _, cs := range stats {
				if cs.Shard < 0 || cs.Shard >= db.NumShards() {
					t.Fatalf("stats name shard %d outside [0,%d)", cs.Shard, db.NumShards())
				}
				reclaimed += cs.Reclaimed
			}
			// n/4 deletes (each retiring a put and itself) and (n/4 - 1)
			// effective overwrites guarantee dead records existed.
			if reclaimed == 0 {
				t.Fatal("compaction reclaimed nothing despite deletes and overwrites")
			}
			check()

			m1 := db.Metrics()
			if m1.Compactions == 0 || m1.ReclaimedSlots == 0 {
				t.Fatalf("compaction metrics dead: %d compactions, %d reclaimed", m1.Compactions, m1.ReclaimedSlots)
			}

			// The compacted state is durable.
			crashRecoverAll(t, db)
			check()

			// Metrics are monotonic across further churn and compactions.
			for k := core.Val(0); k < n; k += 4 {
				if _, err := db.Put(k, 700+k); err != nil {
					t.Fatal(err)
				}
			}
			if err := db.Sync(); err != nil {
				t.Fatal(err)
			}
			if _, err := db.Compact(); err != nil {
				t.Fatal(err)
			}
			m2 := db.Metrics()
			if m2.Compactions < m1.Compactions || m2.ReclaimedSlots < m1.ReclaimedSlots {
				t.Fatalf("compaction metrics went backwards: %+v -> %+v", m1, m2)
			}
			if m2.Compactions == m1.Compactions {
				t.Fatal("second Compact with a dirty log did not compact")
			}
		})
	}
}

// testAutoCompactCapacity pins the CompactAtFill contract: a workload
// writing far more records than Shards × Capacity completes without
// ShardFullError as long as the live set fits, and the error — still
// matching errors.Is(err, ErrShardFull) through any wrapping — returns
// once live data truly exceeds capacity.
func testAutoCompactCapacity(t *testing.T, f Factory) {
	for _, strat := range kv.Strategies {
		t.Run(strat.String(), func(t *testing.T) {
			db := f(t, kv.Config{
				Shards: 2, Capacity: 24, CompactAtFill: 0.75,
				Strategy: strat, Batch: 4, Seed: 41, EvictEvery: 3,
			})
			const keys = 16
			total := db.NumShards() * 24
			rounds := 2*total/keys + 2 // writes ≈ 2 × the service's total log capacity
			for r := 0; r < rounds; r++ {
				for k := core.Val(0); k < keys; k++ {
					if _, err := db.Put(k, core.Val(r)*100+k+1); err != nil {
						t.Fatalf("round %d put(%d): %v (writes must outlive capacity under auto-compaction)", r, k, err)
					}
				}
			}
			if err := db.Sync(); err != nil {
				t.Fatal(err)
			}
			m := db.Metrics()
			if m.Compactions == 0 || m.ReclaimedSlots == 0 {
				t.Fatalf("no compactions after %d writes through %d total slots", rounds*keys, total)
			}
			for k := core.Val(0); k < keys; k++ {
				v, ok, err := db.Get(k)
				if err != nil || !ok || v != core.Val(rounds-1)*100+k+1 {
					t.Fatalf("get %d = (%d, %v, %v) after overwrite churn", k, v, ok, err)
				}
			}
			// The survivors stay durable through a crash sweep.
			crashRecoverAll(t, db)
			for k := core.Val(0); k < keys; k++ {
				if v, ok, err := db.Get(k); err != nil || !ok || v != core.Val(rounds-1)*100+k+1 {
					t.Fatalf("get %d = (%d, %v, %v) after crash sweep", k, v, ok, err)
				}
			}

			// Fresh keys grow the live set; once some shard's live records
			// exceed its capacity no fold can fit and the error must
			// surface, diagnosable as ever.
			var lastErr error
			for k := core.Val(1000); k < core.Val(1000+4*total) && lastErr == nil; k++ {
				_, lastErr = db.Put(k, 1)
			}
			if !errors.Is(lastErr, kv.ErrShardFull) {
				t.Fatalf("live set beyond capacity: got %v, want ErrShardFull", lastErr)
			}
			var full *kv.ShardFullError
			if !errors.As(lastErr, &full) {
				t.Fatalf("error does not carry *kv.ShardFullError: %v", lastErr)
			}
		})
	}
}

// testBadArguments pins argument validation across the surface.
func testBadArguments(t *testing.T, f Factory) {
	db := f(t, cfgFor(kv.MStoreEach))
	if _, err := db.Put(-1, 5); !errors.Is(err, kv.ErrBadKey) {
		t.Fatalf("negative key put: %v", err)
	}
	if _, err := db.Put(1, 0); !errors.Is(err, kv.ErrBadKey) {
		t.Fatalf("zero value put: %v", err)
	}
	if _, _, err := db.Get(-2); !errors.Is(err, kv.ErrBadKey) {
		t.Fatalf("negative key get: %v", err)
	}
	if _, err := db.MultiGet([]core.Val{1, -3}); !errors.Is(err, kv.ErrBadKey) {
		t.Fatalf("negative key multiget: %v", err)
	}
	if _, err := db.Apply(new(kv.Batch).Put(-1, 1)); !errors.Is(err, kv.ErrBadKey) {
		t.Fatalf("negative key apply: %v", err)
	}
	// A zero-value put in a batch is invalid input — it must fail exactly
	// like Store.Put(k, 0) does, not silently apply as a delete.
	if _, err := db.Put(5, 50); err != nil {
		t.Fatal(err)
	}
	if err := db.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Apply(new(kv.Batch).Put(5, 0)); !errors.Is(err, kv.ErrBadKey) {
		t.Fatalf("zero-value put in batch: %v", err)
	}
	if v, ok, err := db.Get(5); err != nil || !ok || v != 50 {
		t.Fatalf("rejected batch still mutated key 5: (%d, %v, %v)", v, ok, err)
	}
	if _, err := db.Delete(-1); !errors.Is(err, kv.ErrBadKey) {
		t.Fatalf("negative key delete: %v", err)
	}
}

// observable is the optional surface a DB exposes to attach the
// observability layer. Both *kv.Store and *pool.Router implement it; a
// future implementation without it simply skips the agreement case.
type observable interface {
	Observe(rec *obs.Recorder)
}

// testObservabilityAgreement pins the event/metrics contract across the
// DB surface: over a crash-churn run with a periodically drained
// subscriber, the summed client acks carried on op-span, commit and
// recover events equal Metrics.Acked; completed-checkpoint events match
// the Migrations, Compactions and Recoveries counters; and the default
// bus size loses nothing when the consumer keeps up.
func testObservabilityAgreement(t *testing.T, f Factory) {
	for _, strat := range []kv.Strategy{kv.GroupCommit, kv.RangedCommit, kv.MStoreEach} {
		t.Run(strat.String(), func(t *testing.T) {
			cfg := cfgFor(strat)
			// Small logs + auto-compaction so the churn below compacts
			// repeatedly even when a pooled factory spreads the writes
			// across several clusters.
			cfg.Capacity = 64
			cfg.CompactAtFill = 0.5
			db := f(t, cfg)
			o, ok := db.(observable)
			if !ok {
				t.Skipf("%T does not expose Observe; agreement not applicable", db)
			}
			bus := obs.NewBus(obs.DefaultBusSize)
			sub := bus.Subscribe()
			o.Observe(obs.NewRecorder(bus, obs.NewStats()))

			ackSum, flips, reclaims, recovers := 0, uint64(0), uint64(0), uint64(0)
			drain := func() {
				for _, e := range sub.Poll(0) {
					switch e.Kind {
					case obs.KindOp, obs.KindCommit, obs.KindRecover:
						ackSum += e.Acked
						if e.Kind == obs.KindRecover {
							recovers++
						}
					case obs.KindMigration:
						if e.Step == "after-flip" {
							flips++
						}
					case obs.KindCompaction:
						if e.Step == "after-reclaim" {
							reclaims++
						}
					}
				}
			}

			const keys = 40
			for round := 0; round < 12; round++ {
				for k := core.Val(0); k < keys; k++ {
					if _, err := db.Put(k, core.Val(round)*1000+k+1); err != nil {
						t.Fatalf("round %d put %d: %v", round, k, err)
					}
				}
				if round%2 == 0 {
					if _, err := db.Scan(0, keys, 10); err != nil {
						t.Fatal(err)
					}
				}
				if round%3 == 2 {
					sh := round % db.NumShards()
					db.Crash(sh)
					if _, err := db.Recover(sh); err != nil {
						t.Fatal(err)
					}
				}
				if round%4 == 3 {
					if _, err := db.Rebalance(); err != nil {
						t.Fatal(err)
					}
				}
				drain()
			}
			if err := db.Sync(); err != nil {
				t.Fatal(err)
			}
			drain()

			m := db.Metrics()
			if uint64(ackSum) != m.Acked {
				t.Fatalf("event acks sum to %d, Metrics.Acked = %d", ackSum, m.Acked)
			}
			if flips != m.Migrations {
				t.Fatalf("after-flip events = %d, Metrics.Migrations = %d", flips, m.Migrations)
			}
			if reclaims != m.Compactions {
				t.Fatalf("after-reclaim events = %d, Metrics.Compactions = %d", reclaims, m.Compactions)
			}
			if recovers != m.Recoveries {
				t.Fatalf("recover events = %d, Metrics.Recoveries = %d", recovers, m.Recoveries)
			}
			if m.Compactions == 0 {
				t.Fatal("churn produced no compactions; the agreement case lost its teeth")
			}
			if d := sub.Dropped(); d != 0 {
				t.Fatalf("default bus size dropped %d events under a kept-up consumer", d)
			}
		})
	}
}

// FullToDiagnosable fills a tiny DB until it errors and checks the
// failure is a diagnosable ShardFullError carrying shard identity and
// fill level — the contract bench/workload failures rely on. Exposed
// separately from Run because it needs a capacity-constrained config.
func FullToDiagnosable(t *testing.T, f Factory) {
	db := f(t, kv.Config{Shards: 1, Capacity: 4, Strategy: kv.MStoreEach, Seed: 2})
	var lastErr error
	for k := core.Val(0); k < 10 && lastErr == nil; k++ {
		_, lastErr = db.Put(k, 1)
	}
	if !errors.Is(lastErr, kv.ErrShardFull) {
		t.Fatalf("want ErrShardFull, got %v", lastErr)
	}
	var full *kv.ShardFullError
	if !errors.As(lastErr, &full) {
		t.Fatalf("error does not carry *kv.ShardFullError: %v", lastErr)
	}
	if full.Appended != 4 || full.Capacity != 4 || full.Fill() != 1 || full.Need != 1 {
		t.Fatalf("fill details wrong: %+v", full)
	}
	if msg := lastErr.Error(); !strings.Contains(msg, "100% full") {
		t.Fatalf("error message %q does not state the fill level", msg)
	}
}
