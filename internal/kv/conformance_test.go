package kv_test

import (
	"testing"

	"cxl0/internal/kv"
	"cxl0/internal/kv/kvtest"
)

// TestStoreConformance runs the reusable kv.DB conformance suite against
// the single-cluster *Store — the same suite pool.Router must pass.
func TestStoreConformance(t *testing.T) {
	kvtest.Run(t, func(t *testing.T, cfg kv.Config) kv.DB {
		t.Helper()
		st, err := kv.Open(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return st
	})
}

// TestStoreShardFullDiagnosable checks a full shard fails with the
// structured ShardFullError (shard identity + fill level).
func TestStoreShardFullDiagnosable(t *testing.T) {
	kvtest.FullToDiagnosable(t, func(t *testing.T, cfg kv.Config) kv.DB {
		t.Helper()
		st, err := kv.Open(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return st
	})
}
