// Package kv is a sharded, durable key-value service built on the CXL0
// runtime: the first subsystem of this repository that *serves traffic*
// against the simulated disaggregated-memory cluster rather than checking
// or measuring the model itself.
//
// A Store shards keys by hash across the machines of a memsim.Cluster: each
// shard owns a contiguous region of one machine's disaggregated heap and
// holds an append-only record log there — the on-"medium" representation —
// plus a volatile Go-side index (key → newest record slot) standing in for
// the DRAM hashtable a real node would keep. Every log access goes through
// memsim primitives, so each operation pays the latency model's cost on the
// simulated clock and obeys the paper's crash semantics.
//
// # The DB interface
//
// The service surface is the DB interface, not the concrete Store: clients
// and harnesses (internal/workload, cmd/cxl0-bench) program against DB —
// point ops, the batch ops MultiGet and Apply, Scan, Sync, and the
// crash/recover/rebalance/metrics control plane — and *Store is one
// implementation of it over a single cluster. pool.Router implements the
// same interface over several pooled clusters (capacity scaling past one
// coherence domain; see docs/pooling.md), which is why the surface is an
// interface: code written against DB runs unchanged on either. Apply takes
// a Batch of puts/deletes and acknowledges it with one Ack at its commit
// point — the batch maps directly onto the batched persistence strategies
// below — and MultiGet amortizes routing across a set of point lookups.
// (Before the pooling work this package exported only the concrete Store;
// callers outside construction sites should now hold a DB.)
//
// # Persistence strategies
//
// How an appended record becomes durable — and therefore when the write is
// acknowledged — is pluggable, mirroring the idioms of internal/ds and §6
// of the paper:
//
//	MStoreEach   — every record word is an MStore: persistent on return,
//	               paying the full memory round trip per word.
//	StoreFlush   — LStore the record, then flush word by word (the owner's
//	               LFlush when the worker is colocated with the shard,
//	               RFlush otherwise): the paper's LStore+LFlush/RFlush idiom.
//	RStoreFlush  — RStore pushes each word into the owner's cache, then
//	               RFlush persists it.
//	GPFEach      — LStore the record, then issue one Global Persistent
//	               Flush per operation: correct and simple, and the baseline
//	               the batched strategies amortize.
//	GroupCommit  — LStore records as they arrive (visible immediately) and
//	               issue a single GPF per batch of Batch writes: group
//	               commit. The per-operation flush cost is divided by the
//	               batch size, but a GPF drains the whole fabric, so each
//	               commit also stalls every other shard.
//	RangedCommit — group commit over the ranged persistent flush: one
//	               RFlushRange covering exactly the batch's log lines. The
//	               commit involves only the shard's own device, so its cost
//	               is charged shard-locally and per-operation commit cost
//	               stays flat as shards are added.
//
// See docs/persistence.md for the full strategy × hardware-variant matrix
// with per-strategy soundness arguments and recovery procedures.
//
// # The durability and acknowledgment contract
//
// Every write returns an Ack. The contract, precisely:
//
//   - Ack.Durable reports whether the record was persistent — present in
//     its owner's physical memory — at the moment the call returned.
//   - Strategy.Durable() reports whether the strategy acknowledges every
//     write at return. For MStoreEach, StoreFlush, RStoreFlush and GPFEach
//     it returns true, and Ack.Durable is true on every successful write.
//   - For the deferred strategies (GroupCommit, RangedCommit),
//     Strategy.Durable() returns false: a write is acknowledged durable
//     only at its batch's commit point, which is reached when the Batch-th
//     write of the batch arrives (that write returns Ack.Durable == true,
//     covering the whole batch) or when Sync is called. Before that the
//     write returned Ack.Durable == false: it is visible to Get/Scan (like
//     an unflushed RStore'd value in litmus test 1) but a shard crash may
//     legitimately destroy it.
//
// The invariant all six strategies maintain: a write acknowledged durable
// — via Ack.Durable, a later commit, or Sync — survives every subsequent
// crash/recovery sequence. Unacknowledged writes may be dropped by
// recovery (reported as DroppedPending), never corrupted into a different
// value.
//
// # Crash recovery
//
// Records carry a per-slot checksum word covering (slot, key, value), so a
// recovery scan can distinguish fully persisted records from the partial
// leftovers of a crash. Recover scans the log in slot order until the first
// invalid record, truncates everything after the cut (zeroing checksum
// words with MStore, exactly like a log truncation), rebuilds the index
// from the scanned records, and re-persists the recovered prefix so it also
// survives the next crash: one GPF under the GPF-based strategies, or —
// under RangedCommit — one RFlushRange over the shard's own recovered log
// lines, keeping even recovery cost off the rest of the fabric. The
// simulated time spent recovering is the recovery-time metric reported by
// RecoveryStats. A checksum cut falling inside the acknowledged prefix can
// only mean the durability invariant was broken; Recover reports it as
// ErrDurabilityViolation instead of silently truncating acknowledged data.
//
// # Log compaction and checkpointing
//
// Shard logs are append-only, so without reclamation every shard
// eventually exhausts its Capacity records. Compaction (compact.go,
// docs/compaction.md) folds a shard's live index into a durable snapshot
// — written into a double-buffered snapshot region with the store's own
// persistence strategy (one RFlushRange over the snapshot under
// RangedCommit, one GPF otherwise) — commits it with a durable
// snapshot-epoch record (MStored, checksum word last: the commit point,
// mirroring migration's move-out record), and reclaims the whole log for
// reuse. Record checksums are bound to the snapshot epoch, so reclaimed
// records can never validate again; deleted, overwritten and
// migrated-away records simply do not survive the fold. Recover resolves
// the epoch record, revalidates the snapshot, and scans the log tail on
// top under the usual wipe/redo/ownership rules. Config.CompactAtFill
// triggers compaction automatically at a log-fill threshold, converting
// ShardFullError into a condition that only fires when the live set
// itself exceeds Capacity; DB.Compact compacts on demand. Compaction
// busy-time is charged as churn, like recovery and migration.
//
// # Shard map and load-aware rebalancing
//
// Keys do not hash to shards directly: they hash to one of Config.Buckets
// virtual buckets, and a shard map assigns each bucket to a shard (bucket
// b starts on shard b mod Shards). The indirection is what makes placement
// a runtime decision: MigrateBucket moves one bucket's live records to
// another shard — copied durably with the store's own persistence strategy
// (under RangedCommit, one ranged flush over the copied records) and made
// crash-safe by move-marker records in both shards' logs — and Rebalance
// watches per-shard busy-time shares, migrating the hottest buckets off a
// shard whose share exceeds Config.RebalanceThreshold × the mean. Under a
// zipfian mix this turns the static hash layout's hot-shard makespan
// bottleneck into a balanced one, and because RangedCommit charges commit
// cost shard-locally, migrating a hot bucket sheds its commit cost too —
// something a fabric-wide GPF commit cannot do. See docs/rebalancing.md
// for the full migration protocol and its crash-safety argument.
package kv

import (
	"errors"
	"fmt"
	"strings"

	"cxl0/internal/core"
	"cxl0/internal/latency"
)

// ErrShardDown is returned for operations routed to a crashed shard that
// has not been recovered yet.
var ErrShardDown = errors.New("kv: shard machine is down")

// ErrUnavailable is returned for operations routed to a shard whose
// machine is cut off by a fabric partition. Distinct from ErrShardDown:
// the shard's memory, caches and log are intact — nothing was lost and no
// recovery is needed — the fabric just cannot reach it until Heal. Reads
// that fan out over shards (MultiGet, Scan) degrade gracefully instead:
// they return the reachable shards' results plus a *PartialResultError
// (which unwraps to this sentinel) naming the unreachable shards.
var ErrUnavailable = errors.New("kv: shard unreachable (fabric partition)")

// ErrShardFull is returned when a shard's log region is exhausted. With
// Config.CompactAtFill set the store compacts instead, and the error is
// only raised when the live record set itself exceeds the shard's
// capacity (see docs/compaction.md).
var ErrShardFull = errors.New("kv: shard log full")

// ErrBadKey is returned for negative keys or non-positive values (value 0
// is reserved for delete tombstones, negative values for the runtime).
var ErrBadKey = errors.New("kv: keys must be >= 0 and values >= 1")

// ErrFrontDown is returned for operations submitted while the front-end
// machine is crashed: every client operation enters through the front
// end, so a front crash takes the whole service surface down — shard
// machines, their logs and their caches stay intact — until RecoverFront
// restarts it and re-attaches the shards (replaying each durable log to
// recover in-flight batches; see docs/pipeline.md).
var ErrFrontDown = errors.New("kv: front-end machine is down")

// ErrDurabilityViolation is returned by Recover when the checksum cut falls
// inside the acknowledged prefix: an acknowledged — and therefore durable —
// record failed to validate, which no crash should be able to cause. It
// indicates a broken persistence strategy (or corrupted medium), not a
// recoverable condition.
var ErrDurabilityViolation = errors.New("kv: durability violation: acknowledged record lost")

// ErrUnknownStrategy is returned when a Config carries (or a name parses
// to) a Strategy outside the declared set. Raise sites wrap it with the
// offending value; dispatch switches stay exhaustive, so it can only
// fire on a Config built with an out-of-range literal.
var ErrUnknownStrategy = errors.New("kv: unknown strategy")

// ErrOutOfRange is returned when a caller-supplied shard or bucket index
// is outside the store's topology (control-plane methods like
// CompactShard and MigrateBucket take raw indices).
var ErrOutOfRange = errors.New("kv: index out of range")

// Strategy selects how writes reach persistence and when they are
// acknowledged.
type Strategy int

const (
	// MStoreEach writes every record word with MStore.
	MStoreEach Strategy = iota
	// StoreFlush writes with LStore and flushes per word (LFlush when the
	// worker owns the shard's memory, RFlush otherwise).
	StoreFlush
	// RStoreFlush pushes words into the owner's cache with RStore, then
	// persists them with RFlush.
	RStoreFlush
	// GPFEach follows every record with one Global Persistent Flush.
	GPFEach
	// GroupCommit batches writes and issues one GPF per Batch records.
	GroupCommit
	// RangedCommit batches writes like GroupCommit but commits each batch
	// with one ranged persistent flush (RFlushRange) over exactly the
	// batch's log lines. Only the shard's own device participates, so the
	// commit cost is charged shard-locally instead of stalling the fabric.
	RangedCommit
)

var strategyNames = [...]string{"mstore", "flush", "rstore", "gpf", "group", "ranged"}

func (s Strategy) String() string {
	if s >= 0 && int(s) < len(strategyNames) {
		return strategyNames[s]
	}
	return fmt.Sprintf("Strategy(%d)", int(s))
}

// Strategies lists all persistence strategies.
var Strategies = []Strategy{MStoreEach, StoreFlush, RStoreFlush, GPFEach, GroupCommit, RangedCommit}

// ParseStrategy converts a strategy name (as printed by String, matched
// case-insensitively) back into a Strategy.
func ParseStrategy(name string) (Strategy, error) {
	normalized := strings.ToLower(strings.TrimSpace(name))
	for i, n := range strategyNames {
		if n == normalized {
			return Strategy(i), nil
		}
	}
	return 0, fmt.Errorf("%w: %q (want one of %v)", ErrUnknownStrategy, name, Strategies)
}

// Durable reports whether a write is persistent — and therefore
// acknowledged — when the operation returns: exactly the non-batched
// strategies. The batched ones defer durability and acknowledgment to the
// batch's commit point; see the package documentation for the precise
// contract.
func (s Strategy) Durable() bool { return !s.Batched() }

// Batched reports whether s enqueues writes and commits them per batch.
func (s Strategy) Batched() bool { return s == GroupCommit || s == RangedCommit }

// DefaultBatch is the batch size the batched strategies (GroupCommit,
// RangedCommit) use when Config.Batch is zero.
const DefaultBatch = 32

// DefaultBuckets is the virtual-bucket count of the shard map when
// Config.Buckets is zero. More buckets give the rebalancer finer migration
// granularity (down to isolating a single hot key's bucket); the map
// itself is a front-end DRAM array, so the count costs nothing on the
// simulated clock.
const DefaultBuckets = 128

// DefaultRebalanceThreshold is the busy-share imbalance (max/mean over the
// window since the last check) above which Rebalance starts migrating
// buckets, when Config.RebalanceThreshold is zero.
const DefaultRebalanceThreshold = 1.2

// Config describes a Store.
type Config struct {
	// Shards is the number of shard machines (default 1).
	Shards int
	// Buckets is the number of virtual buckets of the shard map (default
	// DefaultBuckets), rounded up to a multiple of Shards: then the
	// initial layout (bucket b on shard b mod Shards) routes every key to
	// exactly the shard static hash-mod-Shards routing would, and the map
	// only diverges once migrations happen. Keys hash to buckets; buckets
	// map to shards and can be migrated between them at runtime.
	Buckets int
	// RebalanceThreshold is the max/mean busy-share ratio above which
	// Rebalance migrates buckets (default DefaultRebalanceThreshold;
	// values below 1 are treated as 1).
	RebalanceThreshold float64
	// Capacity is the number of log records per shard (default 4096). It
	// is also the shard's live-set capacity: compaction folds at most
	// Capacity live records into a snapshot.
	Capacity int
	// CompactAtFill enables automatic log compaction: when a shard's log
	// fill fraction reaches CompactAtFill, the next append first folds the
	// live index into a durable snapshot and reclaims the log (see
	// docs/compaction.md) instead of pressing on toward ShardFullError.
	// 0 (the default) disables auto-compaction — explicit Compact stays
	// available; values above 1 are clamped to 1.
	CompactAtFill float64
	// Strategy selects the persistence strategy.
	Strategy Strategy
	// Batch is the commit batch size of the batched strategies
	// (default 32; ignored by the per-operation strategies).
	Batch int
	// PipelineDepth is the number of commit flushes a shard may have in
	// flight at once under the batched strategies (GroupCommit,
	// RangedCommit). 1 (the default) is the classic blocking commit: the
	// batch-filling write waits for its flush and returns Ack.Durable ==
	// true. Depths above 1 enable the asynchronous commit pipeline:
	// appends keep streaming while up to PipelineDepth flushes are in
	// flight, every batched write returns Ack.Durable == false, acks fire
	// in batch order at each batch's own commit point, and reads are
	// gated by the shard's acked-watermark (a Get never returns a value
	// newer than the watermark; see docs/pipeline.md). Ignored by the
	// per-operation strategies.
	PipelineDepth int
	// Variant selects the hardware model flavour (Base, PSN, LWB).
	Variant core.Variant
	// EvictEvery injects background cache eviction as in memsim.Config.
	EvictEvery int
	// Seed drives the cluster's nondeterminism.
	Seed int64
	// Colocate binds each shard's worker threads to the shard's own
	// machine (owner-local access) instead of the front-end machine.
	Colocate bool
	// ThreadsPerShard is the number of worker threads per shard
	// (default 1); operations round-robin across them.
	ThreadsPerShard int
	// Latency is the cost model charged to the simulated clock
	// (default latency.NewModel()).
	Latency *latency.Model
	// ReadCache is the entry capacity of the per-front-end volatile read
	// cache: a bounded key→value cache of MESI-modeled lines consulted
	// before paying the simulated Load on the read path, invalidated
	// inline by every write path that changes visible state (see
	// docs/caching.md). 0 (the default) disables the cache entirely —
	// the read path is byte-for-byte the uncached one.
	ReadCache int
	// Prefetch enables the speculative prefetcher on top of the read
	// cache: a per-shard Markov successor table plus a sequential-run
	// detector issue non-blocking speculative reads that warm the cache
	// ahead of Get/Scan. Ignored unless ReadCache > 0.
	Prefetch bool
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.Buckets <= 0 {
		c.Buckets = DefaultBuckets
	}
	if c.Buckets < c.Shards {
		c.Buckets = c.Shards
	}
	if r := c.Buckets % c.Shards; r != 0 {
		c.Buckets += c.Shards - r
	}
	if c.RebalanceThreshold <= 0 {
		c.RebalanceThreshold = DefaultRebalanceThreshold
	} else if c.RebalanceThreshold < 1 {
		c.RebalanceThreshold = 1
	}
	if c.CompactAtFill < 0 {
		c.CompactAtFill = 0
	} else if c.CompactAtFill > 1 {
		c.CompactAtFill = 1
	}
	if c.Capacity <= 0 {
		c.Capacity = 4096
	}
	if c.Batch <= 0 {
		c.Batch = DefaultBatch
	}
	if c.PipelineDepth < 1 {
		c.PipelineDepth = 1
	}
	if c.ThreadsPerShard <= 0 {
		c.ThreadsPerShard = 1
	}
	if c.Latency == nil {
		c.Latency = latency.NewModel()
	}
	return c
}

// recWords is the record layout: [key, value, chk].
const recWords = 3

// chkOf is the record checksum: a function of the slot, the record's
// content and the shard's snapshot epoch, so a partially persisted record
// (some words still zero or stale) fails validation during the recovery
// scan — and so does a pre-compaction leftover once the epoch moves on:
// compaction reclaims the log by bumping the epoch, which retires every
// old record's checksum without touching the medium (see compact.go).
// Always >= 1, so a never-written slot (all zeros) is invalid.
func chkOf(slot int, key, val core.Val, epoch uint64) core.Val {
	h := (uint64(slot) + 1) * 0x9e3779b97f4a7c15
	h ^= (uint64(key) + 3) * 0xff51afd7ed558ccd
	h ^= (uint64(val) + 7) * 0xc4ceb9fe1a85ec53
	h ^= (epoch + 11) * 0x94d049bb133111eb
	h ^= h >> 29
	return core.Val(h%((1<<40)-1)) + 1
}

// moveChkOf is the checksum domain of move-marker records (bucket
// migration bookkeeping in the log; see migrate.go). Client checksums are
// < 2^41 and move checksums in [2^41, 2^42), so a recovery scan can tell
// the record kinds apart from the checksum word alone while keeping the
// same partial-persist detection: a half-written marker validates in
// neither domain.
func moveChkOf(slot int, key, val core.Val, epoch uint64) core.Val {
	return chkOf(slot, key, val, epoch) + (1 << 41)
}

// snapChkOf is the checksum domain of snapshot records (>= 2^42): a
// compaction's snapshot region is validated in its own domain so a
// snapshot word can never be mistaken for a log record (or vice versa),
// with the same epoch binding — an old snapshot's leftovers in the
// double-buffered region never validate under a newer epoch.
func snapChkOf(slot int, key, val core.Val, epoch uint64) core.Val {
	return chkOf(slot, key, val, epoch) + (1 << 42)
}

// epochChkOf is the checksum of a snapshot-epoch record — the two-slot
// commit record of compaction, covering the epoch number and the snapshot
// length. Always >= 1, so the never-written initial state (all zeros) is
// invalid and decodes as "epoch 0, no snapshot".
func epochChkOf(epoch uint64, snapLen int) core.Val {
	h := (epoch + 5) * 0xff51afd7ed558ccd
	h ^= (uint64(snapLen) + 9) * 0x9e3779b97f4a7c15
	h ^= h >> 31
	return core.Val(h%((1<<40)-1)) + 1
}

// hashKey spreads keys over shards (Fibonacci hashing, as in ds.Map).
func hashKey(k core.Val) uint64 { return uint64(k) * 0x9e3779b97f4a7c15 }
