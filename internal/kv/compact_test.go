package kv

import (
	"errors"
	"strings"
	"testing"

	"cxl0/internal/core"
)

// TestCompactReclaimsAndPreserves covers one explicit compaction end to
// end under every strategy: visibility is unchanged, the log is
// reclaimed, deleted and overwritten records are retired, the snapshot
// epoch advances, and the compacted state survives crash/recovery.
func TestCompactReclaimsAndPreserves(t *testing.T) {
	for _, strat := range Strategies {
		t.Run(strat.String(), func(t *testing.T) {
			st := openTest(t, Config{Shards: 1, Capacity: 64, Strategy: strat, Batch: 4, Seed: 17, EvictEvery: 3})
			want := map[core.Val]core.Val{}
			for k := core.Val(0); k < 20; k++ {
				if _, err := st.Put(k, 100+k); err != nil {
					t.Fatal(err)
				}
				want[k] = 100 + k
			}
			for k := core.Val(0); k < 20; k += 4 {
				if _, err := st.Delete(k); err != nil {
					t.Fatal(err)
				}
				delete(want, k)
			}
			for k := core.Val(1); k < 20; k += 4 {
				if _, err := st.Put(k, 300+k); err != nil {
					t.Fatal(err)
				}
				want[k] = 300 + k
			}
			if err := st.Sync(); err != nil {
				t.Fatal(err)
			}
			appended := st.AppendedCount(0)

			stats, err := st.Compact()
			if err != nil {
				t.Fatal(err)
			}
			if len(stats) != 1 {
				t.Fatalf("compacted %d shards, want 1", len(stats))
			}
			cs := stats[0]
			if cs.Shard != 0 || cs.Epoch != 1 || cs.Live != len(want) {
				t.Fatalf("stats %+v: want shard 0, epoch 1, live %d", cs, len(want))
			}
			if cs.Reclaimed != appended-len(want) {
				t.Fatalf("reclaimed %d slots of %d appended with %d live", cs.Reclaimed, appended, len(want))
			}
			if cs.SimNS <= 0 {
				t.Fatal("compaction consumed no simulated time")
			}
			if st.AppendedCount(0) != 0 {
				t.Fatalf("log not reclaimed: %d records remain", st.AppendedCount(0))
			}
			if st.SnapshotLen(0) != len(want) {
				t.Fatalf("snapshot holds %d records, want %d", st.SnapshotLen(0), len(want))
			}
			check := func() {
				t.Helper()
				for k := core.Val(0); k < 20; k++ {
					v, ok, err := st.Get(k)
					wv, wok := want[k]
					if err != nil || ok != wok || (ok && v != wv) {
						t.Fatalf("get(%d) = (%d,%v,%v), want (%d,%v)", k, v, ok, err, wv, wok)
					}
				}
				if pairs, err := st.Scan(0, 100, 0); err != nil || len(pairs) != len(want) {
					t.Fatalf("scan = %d pairs, %v; want %d", len(pairs), err, len(want))
				}
			}
			check()

			m := st.Metrics()
			if m.Compactions != 1 || int(m.ReclaimedSlots) != cs.Reclaimed || len(m.CompactionNS) != 1 {
				t.Fatalf("metrics %+v after one compaction", m)
			}
			// Compaction time is churn: excluded from the placement-skew
			// metric like recovery time.
			if m.PerShardChurnNS[0] <= 0 || m.PerShardChurnNS[0] > m.PerShardBusyNS[0] {
				t.Fatalf("churn %.0f vs busy %.0f", m.PerShardChurnNS[0], m.PerShardBusyNS[0])
			}

			// The compacted state is durable: crash and recover, then keep
			// serving.
			st.Crash(0)
			rstats, err := st.Recover(0)
			if err != nil {
				t.Fatal(err)
			}
			if rstats.Snapshot != len(want) || rstats.Recovered != 0 {
				t.Fatalf("recovery stats %+v: want %d snapshot records, 0 log records", rstats, len(want))
			}
			check()

			// Writes keep appending on the reclaimed log; a second
			// compaction folds snapshot + log and advances the epoch.
			for k := core.Val(2); k < 20; k += 4 {
				if _, err := st.Put(k, 500+k); err != nil {
					t.Fatal(err)
				}
				want[k] = 500 + k
			}
			if err := st.Sync(); err != nil {
				t.Fatal(err)
			}
			if _, err := st.Compact(); err != nil {
				t.Fatal(err)
			}
			if e := st.SnapshotEpoch(0); e != 2 {
				t.Fatalf("epoch %d after second compaction, want 2", e)
			}
			check()
			if got := st.Metrics().Compactions; got != 2 {
				t.Fatalf("compactions = %d, want 2", got)
			}
		})
	}
}

// TestCompactEmptyLogIsNoop: compacting a shard with an empty log does
// nothing — no epoch bump, no counters.
func TestCompactEmptyLogIsNoop(t *testing.T) {
	st := openTest(t, Config{Shards: 2, Capacity: 32, Strategy: MStoreEach, Seed: 4})
	if stats, err := st.Compact(); err != nil || len(stats) != 0 {
		t.Fatalf("compact of empty store: %+v, %v", stats, err)
	}
	if m := st.Metrics(); m.Compactions != 0 || m.ReclaimedSlots != 0 {
		t.Fatalf("noop compaction counted: %+v", m)
	}
	// After a real compaction, a second immediate Compact is a no-op too
	// (the snapshot already holds exactly the live set).
	if _, err := st.Put(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Compact(); err != nil {
		t.Fatal(err)
	}
	before := st.Metrics().Compactions
	if stats, err := st.Compact(); err != nil || len(stats) != 0 {
		t.Fatalf("immediate re-compact: %+v, %v", stats, err)
	}
	if got := st.Metrics().Compactions; got != before {
		t.Fatalf("re-compact bumped the counter: %d -> %d", before, got)
	}
}

// TestCompactReclaimsMigratedAwayRecords: records a bucket migration left
// behind on the source shard are dead weight until compaction retires
// them (the ROADMAP hand-off between rebalancing and compaction).
func TestCompactReclaimsMigratedAwayRecords(t *testing.T) {
	st := openTest(t, Config{Shards: 2, Buckets: 8, Capacity: 128, Strategy: RangedCommit, Batch: 4, Seed: 19})
	for k := core.Val(0); k < 24; k++ {
		if _, err := st.Put(k, 10+k); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}
	b := st.BucketOf(0)
	from := st.ShardOfBucket(b)
	mig, err := st.MigrateBucket(b, 1-from)
	if err != nil {
		t.Fatal(err)
	}
	if mig.Records == 0 {
		t.Fatal("migration moved nothing")
	}
	appended := st.AppendedCount(from)
	live := 0
	for k := core.Val(0); k < 24; k++ {
		if st.ShardOf(k) == from {
			live++
		}
	}
	stats, err := st.CompactShard(from)
	if err != nil {
		t.Fatal(err)
	}
	// The source log held the migrated-away records plus its move-out
	// marker; all of them (and nothing live) must be reclaimed.
	if stats.Live != live || stats.Reclaimed != appended-live {
		t.Fatalf("compaction stats %+v: want live %d, reclaimed %d", stats, live, appended-live)
	}
	for k := core.Val(0); k < 24; k++ {
		v, ok, err := st.Get(k)
		if err != nil || !ok || v != 10+k {
			t.Fatalf("get(%d) = (%d,%v,%v) after migrate+compact", k, v, ok, err)
		}
	}
	// And the compacted source still recovers and migrates cleanly.
	st.Crash(from)
	if _, err := st.Recover(from); err != nil {
		t.Fatal(err)
	}
	if _, err := st.MigrateBucket(b, from); err != nil {
		t.Fatal(err)
	}
	for k := core.Val(0); k < 24; k++ {
		if v, ok, err := st.Get(k); err != nil || !ok || v != 10+k {
			t.Fatalf("get(%d) = (%d,%v,%v) after migrate-back", k, v, ok, err)
		}
	}
}

// TestAutoCompactMidBatchAccounting is the regression test for the
// auto-compaction bugfix: a compaction triggered from inside Apply's
// batch commit path must neither deadlock nor double-charge its time as
// traffic. The compaction runs before the triggering append's span stamp
// and charges itself as churn, so the run's traffic time (busy − churn)
// must equal the identical Apply stream on an uncapped store that never
// compacts.
func TestAutoCompactMidBatchAccounting(t *testing.T) {
	run := func(capacity int, fill float64) (Metrics, int) {
		st := openTest(t, Config{
			Shards: 1, Capacity: capacity, CompactAtFill: fill,
			Strategy: RangedCommit, Batch: 8, Seed: 23,
		})
		writes := 0
		for round := 0; round < 6; round++ {
			b := new(Batch)
			for k := core.Val(0); k < 10; k++ {
				b.Put(k, core.Val(1000*round)+k+1)
				writes++
			}
			b.Delete(core.Val(round))
			writes++
			ack, err := st.Apply(b)
			if err != nil {
				t.Fatal(err)
			}
			if !ack.Durable {
				t.Fatalf("round %d: Apply ack not durable", round)
			}
		}
		return st.Metrics(), writes
	}

	capped, writes := run(24, 0.7)
	if capped.Compactions == 0 {
		t.Fatal("capacity pressure never triggered auto-compaction mid-batch")
	}
	if int(capped.Acked) != writes {
		t.Fatalf("acked %d client writes, %d applied: mid-batch compaction must ack each write exactly once",
			capped.Acked, writes)
	}
	if len(capped.WriteLatencies) != writes {
		t.Fatalf("%d ack latencies for %d writes", len(capped.WriteLatencies), writes)
	}

	uncapped, _ := run(4096, 0)
	if uncapped.Compactions != 0 {
		t.Fatal("uncapped run compacted")
	}
	traffic := func(m Metrics) float64 {
		total := 0.0
		for i, b := range m.PerShardBusyNS {
			total += b - m.PerShardChurnNS[i]
		}
		return total
	}
	churn := func(m Metrics) float64 {
		total := 0.0
		for _, c := range m.PerShardChurnNS {
			total += c
		}
		return total
	}
	ct, ut := traffic(capped), traffic(uncapped)
	cc := churn(capped)
	if ut <= 0 || cc <= 0 {
		t.Fatalf("degenerate run: traffic %.0f, churn %.0f", ut, cc)
	}
	// The capped run's traffic may exceed the uncapped run's only by the
	// extra commit flushes the mid-batch commits introduce (a batch split
	// across a compaction pays the fixed flush cost twice) — a sliver of
	// one commit each. The bug this test pins — compaction time counted
	// inside the triggering append's span — would instead leak the whole
	// compaction cost (≈ the churn total, here larger than the entire
	// traffic time) into traffic, so a tight churn-relative bound detects
	// it with a wide margin.
	if ct < ut-1e-6*ut {
		t.Fatalf("traffic time shrank under auto-compaction: %.0f capped vs %.0f uncapped", ct, ut)
	}
	if ct-ut > cc/10 {
		t.Fatalf("traffic time drifted under auto-compaction: %.0f capped vs %.0f uncapped with churn %.0f "+
			"(compaction cost leaked out of churn)", ct, ut, cc)
	}
}

// TestAutoCompactUntilLiveExceedsCapacity pins the ShardFullError
// contract under auto-compaction: overwrite churn never fills the
// service, and the error returns — still structured and diagnosable —
// only once the live set itself cannot fold into a shard.
func TestAutoCompactUntilLiveExceedsCapacity(t *testing.T) {
	st := openTest(t, Config{Shards: 1, Capacity: 16, CompactAtFill: 0.75, Strategy: MStoreEach, Seed: 29})
	// 10 live keys, 10 rounds: 100 appends through a 16-slot log.
	for round := 0; round < 10; round++ {
		for k := core.Val(0); k < 10; k++ {
			if _, err := st.Put(k, core.Val(round)*100+k+1); err != nil {
				t.Fatalf("round %d put(%d): %v", round, k, err)
			}
		}
	}
	if m := st.Metrics(); m.Compactions == 0 {
		t.Fatal("overwrite churn never compacted")
	}
	// Fresh keys grow the live set past capacity: the next fold cannot
	// fit, and the error names the real condition.
	var lastErr error
	for k := core.Val(100); k < 200 && lastErr == nil; k++ {
		_, lastErr = st.Put(k, 1)
	}
	if !errors.Is(lastErr, ErrShardFull) {
		t.Fatalf("want ErrShardFull once live data exceeds capacity, got %v", lastErr)
	}
	var full *ShardFullError
	if !errors.As(lastErr, &full) {
		t.Fatalf("error does not carry *ShardFullError: %v", lastErr)
	}
	if !full.Live || full.Appended <= full.Capacity {
		t.Fatalf("diagnostics %+v should report a live set above capacity", full)
	}
	if msg := lastErr.Error(); !strings.Contains(msg, "live set cannot fold") {
		t.Fatalf("error message %q does not name the live-set condition", msg)
	}
}

// TestRecoverDetectsSnapshotCorruption: a committed snapshot record or
// the epoch record failing validation is a durability violation, not a
// truncation.
func TestRecoverDetectsSnapshotCorruption(t *testing.T) {
	corrupt := func(t *testing.T, loc func(*Store) core.LocID) error {
		st := openTest(t, Config{Shards: 1, Capacity: 32, Strategy: MStoreEach, Seed: 31})
		for k := core.Val(0); k < 8; k++ {
			if _, err := st.Put(k, k+1); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := st.Compact(); err != nil {
			t.Fatal(err)
		}
		th, err := st.Cluster().NewThread(0)
		if err != nil {
			t.Fatal(err)
		}
		if err := th.MStore(loc(st), 0); err != nil {
			t.Fatal(err)
		}
		st.Crash(0)
		_, rerr := st.Recover(0)
		return rerr
	}
	t.Run("snapshot-record", func(t *testing.T) {
		err := corrupt(t, func(st *Store) core.LocID { return st.shards[0].snapChkLoc(1, 2) })
		if !errors.Is(err, ErrDurabilityViolation) {
			t.Fatalf("recover after snapshot corruption: %v, want ErrDurabilityViolation", err)
		}
	})
	t.Run("epoch-record", func(t *testing.T) {
		err := corrupt(t, func(st *Store) core.LocID { return st.shards[0].epochLoc(1, 2) })
		if !errors.Is(err, ErrDurabilityViolation) {
			t.Fatalf("recover after epoch-record corruption: %v, want ErrDurabilityViolation", err)
		}
	})
}

// TestMigrateAutoCompactsForHeadroom: with auto-compaction on, a bucket
// migration makes its own log headroom — compacting a source whose log
// is at capacity (for the move-out record) and a destination whose log
// is clogged with dead records (for the copies) — instead of failing
// with ShardFullError while reclaimable slots abound.
func TestMigrateAutoCompactsForHeadroom(t *testing.T) {
	st := openTest(t, Config{Shards: 2, Buckets: 8, Capacity: 24, CompactAtFill: 1, Strategy: MStoreEach, Seed: 37})
	// Find one key per shard.
	k0 := core.Val(0)
	k1 := core.Val(-1)
	for k := core.Val(1); k < 100; k++ {
		if st.ShardOf(k) != st.ShardOf(k0) {
			k1 = k
			break
		}
	}
	if k1 < 0 {
		t.Fatal("no key pair on distinct shards")
	}
	src, dst := st.ShardOf(k0), st.ShardOf(k1)
	// Fill the source's log to exactly its capacity with overwrites of
	// one key (CompactAtFill=1 defers auto-compaction until a log is
	// full), and clog the destination the same way.
	for i := 0; i < 24; i++ {
		if _, err := st.Put(k0, core.Val(i)+1); err != nil {
			t.Fatal(err)
		}
		if _, err := st.Put(k1, core.Val(i)+100); err != nil {
			t.Fatal(err)
		}
	}
	if st.AppendedCount(src) != 24 || st.AppendedCount(dst) != 24 {
		t.Fatalf("logs not at capacity: src %d, dst %d", st.AppendedCount(src), st.AppendedCount(dst))
	}
	// Without headroom-making this migration would need a slot on both
	// full logs; with it, both shards compact and the move goes through.
	b := st.BucketOf(k0)
	if _, err := st.MigrateBucket(b, dst); err != nil {
		t.Fatalf("migration out of a full log: %v", err)
	}
	if st.ShardOf(k0) != dst {
		t.Fatalf("bucket %d not migrated", b)
	}
	if m := st.Metrics(); m.Compactions < 2 {
		t.Fatalf("expected both shards to compact for headroom, got %d compactions", m.Compactions)
	}
	for k, want := range map[core.Val]core.Val{k0: 24, k1: 123} { //cxl0:order-insensitive — independent per-key asserts
		if v, ok, err := st.Get(k); err != nil || !ok || v != want {
			t.Fatalf("get(%d) = (%d,%v,%v), want %d", k, v, ok, err, want)
		}
	}
	// And the migrated state survives a crash sweep.
	for i := 0; i < st.NumShards(); i++ {
		st.Crash(i)
		if _, err := st.Recover(i); err != nil {
			t.Fatal(err)
		}
	}
	for k, want := range map[core.Val]core.Val{k0: 24, k1: 123} { //cxl0:order-insensitive — independent per-key asserts
		if v, ok, err := st.Get(k); err != nil || !ok || v != want {
			t.Fatalf("get(%d) = (%d,%v,%v) after crash sweep, want %d", k, v, ok, err, want)
		}
	}
}
