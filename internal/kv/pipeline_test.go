package kv

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"cxl0/internal/core"
)

// Tests for the asynchronous commit pipeline (pipeline.go) and the
// front-end failover path (failover.go): the acked-watermark read model,
// crashes with the pipeline at full depth, partitions while flushes are
// in flight, and front crash + re-attachment replay. The property layer
// extends property_test.go's prefix-state model — under pipelining a
// read serves the replay of the shard's log up to the acked watermark,
// not the full log — and adds in-flight-depth crash points plus front
// crashes to the crash sweep.

// flightsLen reads a shard's in-flight flush count under the store
// lock. Tests peek at pipeline internals between operations, and the
// guardedby discipline applies to them like any other caller.
func flightsLen(st *Store, shard int) int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.shards[shard].flights)
}

// pumpToDepth overwrites keys 0..maxKey round-robin on a 1-shard store
// until the pipeline holds exactly want in-flight flushes, mirroring the
// writes into mlog. Fails the test if depth never stacks.
func pumpToDepth(t *testing.T, st *Store, mlog *[]modelOp, maxKey core.Val, want int) {
	t.Helper()
	for i := 0; flightsLen(st, 0) < want; i++ {
		if i > 300 {
			t.Fatalf("pipeline never reached depth %d (at %d after %d writes)", want, flightsLen(st, 0), i)
		}
		k := core.Val(i) % (maxKey + 1)
		v := core.Val(2000 + i)
		if _, err := st.Put(k, v); err != nil {
			t.Fatalf("pump put(%d): %v", k, err)
		}
		*mlog = append(*mlog, modelOp{k, v})
	}
}

// TestPipelineCrashAtDepth crashes the shard with the pipeline at full
// depth K and pins the recovery floor: every in-flight flush was
// performed at issue, so the salvage must recover at least through the
// newest flight's limit — strictly more than the acked watermark — and
// the visible state must equal the replay of exactly the recovered
// prefix.
func TestPipelineCrashAtDepth(t *testing.T) {
	const maxKey = 5
	for _, variant := range []core.Variant{core.Base, core.PSN, core.LWB} {
		for _, strat := range []Strategy{GroupCommit, RangedCommit} {
			for _, depth := range []int{2, 4} {
				t.Run(fmt.Sprintf("%v/%v/K%d", variant, strat, depth), func(t *testing.T) {
					st, err := Open(Config{
						Shards: 1, Capacity: 1024, Strategy: strat, Batch: 3,
						Variant: variant, PipelineDepth: depth,
						Seed: int64(strat)*100 + int64(variant)*10 + int64(depth),
					})
					if err != nil {
						t.Fatal(err)
					}
					var mlog []modelOp
					for k := core.Val(0); k <= maxKey; k++ {
						if _, err := st.Put(k, 100+k); err != nil {
							t.Fatal(err)
						}
						mlog = append(mlog, modelOp{k, 100 + k})
					}
					if err := st.Sync(); err != nil {
						t.Fatal(err)
					}
					pumpToDepth(t, st, &mlog, maxKey, depth)

					ackedBefore := st.AckedCount(0)
					st.mu.Lock()
					sh := st.shards[0]
					flushedThrough := sh.flights[len(sh.flights)-1].limit
					st.mu.Unlock()
					if flushedThrough <= ackedBefore {
						t.Fatalf("no unretired flushed records: acked %d, flushed through %d", ackedBefore, flushedThrough)
					}
					st.Crash(0)
					stats, err := st.Recover(0)
					if err != nil {
						t.Fatal(err)
					}
					if stats.Recovered < flushedThrough {
						t.Fatalf("recovered %d records; %d were flushed in flight (acked %d) — an issued flush is durable",
							stats.Recovered, flushedThrough, ackedBefore)
					}
					if stats.Recovered > len(mlog) {
						t.Fatalf("recovered %d records, only %d appended", stats.Recovered, len(mlog))
					}
					if !checkShard(t, st, 0, replay(mlog[:stats.Recovered]), maxKey) {
						t.Fatalf("state diverged from the recovered prefix (cut %d)", stats.Recovered)
					}
					// The service keeps pipelining afterwards.
					mlog = mlog[:stats.Recovered]
					pumpToDepth(t, st, &mlog, maxKey, 2)
					if err := st.Sync(); err != nil {
						t.Fatal(err)
					}
					if st.AckedCount(0) != len(mlog) {
						t.Fatalf("acked %d after final sync, appended %d", st.AckedCount(0), len(mlog))
					}
					if !checkShard(t, st, 0, replay(mlog), maxKey) {
						t.Fatal("final state diverged")
					}
				})
			}
		}
	}
}

// testPipelineCrashRecovery is testCrashRecovery's pipelined sibling:
// random put/delete/read streams with shard crashes, front crashes and
// eviction churn at PipelineDepth K. Reads are checked against the
// acked-watermark model — the replay of the shard's log up to
// AckedCount, probed after the read (the read's own retire pass may
// advance the watermark first) — and every crash point must recover at
// least the acked prefix.
func testPipelineCrashRecovery(t *testing.T, strat Strategy, variant core.Variant, depth int) {
	const maxKey = 12
	f := func(seed int64, opsRaw []byte) bool {
		st, err := Open(Config{
			Shards:        2,
			Capacity:      256,
			Strategy:      strat,
			Batch:         3,
			Variant:       variant,
			EvictEvery:    2,
			PipelineDepth: depth,
			Seed:          seed,
		})
		if err != nil {
			t.Log(err)
			return false
		}
		logs := make([][]modelOp, st.NumShards())
		rng := rand.New(rand.NewSource(seed))
		for i, b := range opsRaw {
			if i > 70 {
				break
			}
			k := core.Val(int(b) % (maxKey + 1))
			shard := st.ShardOf(k)
			switch (b / 16) % 5 {
			case 0, 1:
				v := core.Val(1 + int(b)%90 + i)
				if _, err := st.Put(k, v); err != nil {
					t.Logf("op %d put(%d): %v", i, k, err)
					return false
				}
				logs[shard] = append(logs[shard], modelOp{k, v})
			case 2:
				if _, err := st.Delete(k); err != nil {
					t.Logf("op %d delete(%d): %v", i, k, err)
					return false
				}
				logs[shard] = append(logs[shard], modelOp{k, 0})
			case 3:
				// The watermark read model: visible state is the replay
				// of the acked prefix, never anything newer.
				v, ok, err := st.Get(k)
				if err != nil {
					t.Logf("op %d get(%d): %v", i, k, err)
					return false
				}
				acked := st.AckedCount(shard)
				if acked > len(logs[shard]) {
					t.Logf("op %d: shard %d acked %d, only %d appended", i, shard, acked, len(logs[shard]))
					return false
				}
				want := replay(logs[shard][:acked])
				wv, wok := want[k]
				if ok != wok || (ok && v != wv) {
					t.Logf("op %d: get(%d) = (%d,%v), acked-watermark model (%d,%v) at %d",
						i, k, v, ok, wv, wok, acked)
					return false
				}
			default:
				if rng.Intn(4) == 0 {
					st.Cluster().Churn(4)
					continue
				}
				if rng.Intn(3) == 0 {
					// Front crash + re-attachment replay: the front's
					// cache (staged batches, pipeline bookkeeping) dies;
					// every shard's acked prefix must survive the replay.
					acked := make([]int, st.NumShards())
					for sh := range acked {
						acked[sh] = st.AckedCount(sh)
					}
					st.CrashFront()
					stats, err := st.RecoverFront()
					if err != nil {
						t.Logf("op %d recover front: %v", i, err)
						return false
					}
					if len(stats) != st.NumShards() {
						t.Logf("op %d: front re-attached %d shards, want %d", i, len(stats), st.NumShards())
						return false
					}
					for _, rs := range stats {
						if rs.Recovered < acked[rs.Shard] {
							t.Logf("op %d: shard %d re-attached %d records, %d were acknowledged",
								i, rs.Shard, rs.Recovered, acked[rs.Shard])
							return false
						}
						if rs.Recovered > len(logs[rs.Shard]) {
							t.Logf("op %d: shard %d re-attached %d records, only %d appended",
								i, rs.Shard, rs.Recovered, len(logs[rs.Shard]))
							return false
						}
						logs[rs.Shard] = logs[rs.Shard][:rs.Recovered]
						if !checkShard(t, st, rs.Shard, replay(logs[rs.Shard]), maxKey) {
							t.Logf("op %d: shard %d diverged after front re-attachment", i, rs.Shard)
							return false
						}
					}
					continue
				}
				target := rng.Intn(st.NumShards())
				ackedBefore := st.AckedCount(target)
				st.Crash(target)
				stats, err := st.Recover(target)
				if err != nil {
					t.Logf("op %d recover(%d): %v", i, target, err)
					return false
				}
				if stats.Recovered < ackedBefore {
					t.Logf("op %d: shard %d recovered %d records, %d were acknowledged",
						i, target, stats.Recovered, ackedBefore)
					return false
				}
				if stats.Recovered > len(logs[target]) {
					t.Logf("op %d: shard %d recovered %d records, only %d ever appended",
						i, target, stats.Recovered, len(logs[target]))
					return false
				}
				logs[target] = logs[target][:stats.Recovered]
				if !checkShard(t, st, target, replay(logs[target]), maxKey) {
					t.Logf("op %d: shard %d diverged after recovery (cut %d)", i, target, stats.Recovered)
					return false
				}
			}
		}
		if err := st.Sync(); err != nil {
			t.Log(err)
			return false
		}
		for i := range logs {
			if st.AckedCount(i) != len(logs[i]) {
				t.Logf("shard %d: %d acked after Sync, %d appended", i, st.AckedCount(i), len(logs[i]))
				return false
			}
			if !checkShard(t, st, i, replay(logs[i]), maxKey) {
				t.Logf("shard %d final state diverged", i)
				return false
			}
		}
		return true
	}
	seed := int64(strat)*31 + int64(variant)*7 + int64(depth)
	if err := quick.Check(f, &quick.Config{MaxCount: 20, Rand: rand.New(rand.NewSource(seed))}); err != nil {
		t.Fatal(err)
	}
}

// TestPipelineCrashRecoveryProperty sweeps the pipelined prefix-state
// model over both batched strategies, all three hardware variants and
// pipeline depths 2 and 4 — the in-flight-depth extension of
// TestCrashRecoveryProperty.
func TestPipelineCrashRecoveryProperty(t *testing.T) {
	for _, variant := range []core.Variant{core.Base, core.PSN, core.LWB} {
		for _, strat := range []Strategy{GroupCommit, RangedCommit} {
			for _, depth := range []int{2, 4} {
				t.Run(fmt.Sprintf("%v/%v/K%d", variant, strat, depth), func(t *testing.T) {
					testPipelineCrashRecovery(t, strat, variant, depth)
				})
			}
		}
	}
}

// TestFrontFailover pins the front-end failover contract: a front crash
// takes the whole service surface down with ErrFrontDown (data plane and
// control plane), RecoverFront re-attaches every healthy shard by
// replaying its durable log — acknowledged writes always survive, reads
// resolve old-or-new — and the service serves again afterwards.
func TestFrontFailover(t *testing.T) {
	const maxKey = 11
	for _, strat := range []Strategy{GroupCommit, RangedCommit} {
		for _, depth := range []int{1, 3} {
			t.Run(fmt.Sprintf("%v/K%d", strat, depth), func(t *testing.T) {
				st, err := Open(Config{
					Shards: 2, Capacity: 512, Strategy: strat, Batch: 3,
					PipelineDepth: depth, Seed: int64(strat)*10 + int64(depth),
				})
				if err != nil {
					t.Fatal(err)
				}
				for k := core.Val(0); k <= maxKey; k++ {
					if _, err := st.Put(k, 100+k); err != nil {
						t.Fatal(err)
					}
				}
				if err := st.Sync(); err != nil {
					t.Fatal(err)
				}
				// Overwrites left staged and in flight when the front dies.
				for k := core.Val(0); k <= maxKey; k++ {
					if _, err := st.Put(k, 500+k); err != nil {
						t.Fatal(err)
					}
				}

				st.CrashFront()
				if !st.FrontDown() {
					t.Fatal("FrontDown() false after CrashFront")
				}
				st.CrashFront() // idempotent
				wantDown := func(what string, err error) {
					t.Helper()
					if !errors.Is(err, ErrFrontDown) {
						t.Fatalf("%s while front down: %v, want ErrFrontDown", what, err)
					}
				}
				_, err = st.Put(0, 9)
				wantDown("put", err)
				_, _, err = st.Get(0)
				wantDown("get", err)
				_, err = st.MultiGet([]core.Val{0, 1})
				wantDown("multiget", err)
				_, err = st.Scan(0, maxKey, 0)
				wantDown("scan", err)
				wantDown("sync", st.Sync())
				_, err = st.Compact()
				wantDown("compact", err)
				_, err = st.CompactShard(0)
				wantDown("compactshard", err)
				_, err = st.Rebalance()
				wantDown("rebalance", err)
				_, err = st.Recover(0)
				wantDown("recover", err)
				_, err = st.MigrateBucket(0, 1)
				wantDown("migrate", err)

				stats, err := st.RecoverFront()
				if err != nil {
					t.Fatalf("recover front: %v", err)
				}
				if len(stats) != 2 {
					t.Fatalf("re-attached %d shards, want 2", len(stats))
				}
				if st.FrontDown() {
					t.Fatal("FrontDown() true after RecoverFront")
				}
				if again, err := st.RecoverFront(); again != nil || err != nil {
					t.Fatalf("second RecoverFront = (%v, %v), want no-op", again, err)
				}
				for k := core.Val(0); k <= maxKey; k++ {
					v, ok, err := st.Get(k)
					if err != nil || !ok {
						t.Fatalf("get(%d) after failover: (%v, %v)", k, ok, err)
					}
					if v != 100+k && v != 500+k {
						t.Fatalf("key %d = %d after failover, want acked %d or staged %d", k, v, 100+k, 500+k)
					}
				}
				// Service resumes: write, commit, read back.
				for k := core.Val(0); k <= maxKey; k++ {
					if _, err := st.Put(k, 900+k); err != nil {
						t.Fatal(err)
					}
				}
				if err := st.Sync(); err != nil {
					t.Fatal(err)
				}
				for k := core.Val(0); k <= maxKey; k++ {
					if v, ok, _ := st.Get(k); !ok || v != 900+k {
						t.Fatalf("key %d = (%d,%v) after resumed writes, want %d", k, v, ok, 900+k)
					}
				}
			})
		}
	}

	// Colocated staging survives a front crash: the open batches live in
	// the shard machines' caches, which the front's death never touches,
	// so even unacknowledged writes re-attach.
	t.Run("Colocate", func(t *testing.T) {
		st, err := Open(Config{
			Shards: 2, Capacity: 512, Strategy: GroupCommit, Batch: 3,
			PipelineDepth: 2, Colocate: true, Seed: 7,
		})
		if err != nil {
			t.Fatal(err)
		}
		for k := core.Val(0); k <= maxKey; k++ {
			if _, err := st.Put(k, 100+k); err != nil {
				t.Fatal(err)
			}
		}
		if err := st.Sync(); err != nil {
			t.Fatal(err)
		}
		for k := core.Val(0); k <= maxKey; k++ {
			if _, err := st.Put(k, 500+k); err != nil {
				t.Fatal(err)
			}
		}
		st.CrashFront()
		if _, err := st.RecoverFront(); err != nil {
			t.Fatal(err)
		}
		for k := core.Val(0); k <= maxKey; k++ {
			if v, ok, _ := st.Get(k); !ok || v != 500+k {
				t.Fatalf("colocated staged write %d = (%d,%v) lost by a front crash", k, v, ok)
			}
		}
	})

	// Re-attachment must read every shard's medium: a partitioned shard
	// refuses the whole RecoverFront until healed.
	t.Run("PartitionedRefusal", func(t *testing.T) {
		st, err := Open(Config{
			Shards: 2, Capacity: 512, Strategy: RangedCommit, Batch: 3,
			PipelineDepth: 2, Seed: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		for k := core.Val(0); k <= maxKey; k++ {
			if _, err := st.Put(k, 100+k); err != nil {
				t.Fatal(err)
			}
		}
		if err := st.Sync(); err != nil {
			t.Fatal(err)
		}
		st.Partition(1)
		st.CrashFront()
		if _, err := st.RecoverFront(); !errors.Is(err, ErrUnavailable) {
			t.Fatalf("RecoverFront with a partitioned shard: %v, want ErrUnavailable", err)
		}
		if !st.FrontDown() {
			t.Fatal("front marked up after a refused re-attachment")
		}
		st.Heal(1)
		if _, err := st.RecoverFront(); err != nil {
			t.Fatalf("RecoverFront after heal: %v", err)
		}
		for k := core.Val(0); k <= maxKey; k++ {
			if v, ok, _ := st.Get(k); !ok || v != 100+k {
				t.Fatalf("key %d = (%d,%v) after heal+failover, want %d", k, v, ok, 100+k)
			}
		}
	})

	// A shard down at front-crash time is skipped by the re-attachment
	// and recovers on its own once the front is back.
	t.Run("CrashedShardSkipped", func(t *testing.T) {
		st, err := Open(Config{
			Shards: 2, Capacity: 512, Strategy: GroupCommit, Batch: 3,
			PipelineDepth: 2, Seed: 5,
		})
		if err != nil {
			t.Fatal(err)
		}
		for k := core.Val(0); k <= maxKey; k++ {
			if _, err := st.Put(k, 100+k); err != nil {
				t.Fatal(err)
			}
		}
		if err := st.Sync(); err != nil {
			t.Fatal(err)
		}
		st.Crash(0)
		st.CrashFront()
		stats, err := st.RecoverFront()
		if err != nil {
			t.Fatal(err)
		}
		if len(stats) != 1 || stats[0].Shard != 1 {
			t.Fatalf("re-attached %+v, want only shard 1", stats)
		}
		if _, err := st.Recover(0); err != nil {
			t.Fatalf("recover crashed shard after failover: %v", err)
		}
		for k := core.Val(0); k <= maxKey; k++ {
			if v, ok, _ := st.Get(k); !ok || v != 100+k {
				t.Fatalf("key %d = (%d,%v) after shard+front recovery, want %d", k, v, ok, 100+k)
			}
		}
	})
}

// TestPipelinePartitionWhileInFlight pins the partition × pipeline
// interaction: flights already in flight retire fine during a remote
// partition (retirement is pure bookkeeping), ranged flushes keep
// committing because they never leave the shard's own device, while a
// GPF flush is blocked cluster-wide by any partitioned machine — and a
// heal restores commit service with nothing lost.
func TestPipelinePartitionWhileInFlight(t *testing.T) {
	const maxKey = 23
	keysOn := func(st *Store, shard int) []core.Val {
		var ks []core.Val
		for k := core.Val(0); k <= maxKey; k++ {
			if st.ShardOf(k) == shard {
				ks = append(ks, k)
			}
		}
		return ks
	}

	t.Run("ranged", func(t *testing.T) {
		st, err := Open(Config{
			Shards: 2, Capacity: 512, Strategy: RangedCommit, Batch: 3,
			PipelineDepth: 3, Seed: 11,
		})
		if err != nil {
			t.Fatal(err)
		}
		k0 := keysOn(st, 0)
		writes := 0
		// Stack flights on shard 0, then cut shard 1 off the fabric.
		for i := 0; flightsLen(st, 0) < 2; i++ {
			if i > 300 {
				t.Fatalf("shard 0 never stacked flights (at %d)", flightsLen(st, 0))
			}
			if _, err := st.Put(k0[i%len(k0)], core.Val(1000+i)); err != nil {
				t.Fatal(err)
			}
			writes++
		}
		st.Partition(1)
		// Ranged commits touch only shard 0's device: more writes keep
		// committing and the in-flight flushes retire.
		for i := 0; i < 4*len(k0); i++ {
			if _, err := st.Put(k0[i%len(k0)], core.Val(5000+i)); err != nil {
				t.Fatalf("ranged put during remote partition: %v", err)
			}
			writes++
		}
		if _, _, err := st.Get(k0[0]); err != nil {
			t.Fatalf("get on healthy shard during partition: %v", err)
		}
		// Sync skips the partitioned-but-empty shard 1 and drains shard 0.
		if err := st.Sync(); err != nil {
			t.Fatalf("sync with empty partitioned shard: %v", err)
		}
		if got := st.AckedCount(0); got != writes {
			t.Fatalf("shard 0 acked %d of %d writes during the partition", got, writes)
		}
		if n := flightsLen(st, 0); n != 0 {
			t.Fatalf("%d flights still in flight after Sync", n)
		}
		st.Heal(1)
	})

	t.Run("gpf", func(t *testing.T) {
		st, err := Open(Config{
			Shards: 2, Capacity: 512, Strategy: GroupCommit, Batch: 3,
			PipelineDepth: 3, Seed: 13,
		})
		if err != nil {
			t.Fatal(err)
		}
		k0 := keysOn(st, 0)
		// Stack flights on shard 0 (same-shard GPFs stack; only OTHER
		// shards' flushes cross-retire), then partition shard 1.
		for i := 0; flightsLen(st, 0) < 2; i++ {
			if i > 300 {
				t.Fatalf("shard 0 never stacked flights (at %d)", flightsLen(st, 0))
			}
			if _, err := st.Put(k0[i%len(k0)], core.Val(1000+i)); err != nil {
				t.Fatal(err)
			}
		}
		st.Partition(1)
		// Reads and already-in-flight retirements still work: retirement
		// needs no fabric operation.
		if _, _, err := st.Get(k0[0]); err != nil {
			t.Fatalf("get on healthy shard during partition: %v", err)
		}
		// A NEW global flush is blocked by the remote partition: the put
		// that fills shard 0's next batch fails cluster-wide.
		var flushErr error
		for i := 0; i < 3; i++ {
			if _, flushErr = st.Put(k0[i%len(k0)], core.Val(7000+i)); flushErr != nil {
				break
			}
		}
		if !errors.Is(flushErr, ErrUnavailable) {
			t.Fatalf("GPF flush during remote partition: %v, want ErrUnavailable", flushErr)
		}
		// Sync cannot drain the open batch either.
		if err := st.Sync(); !errors.Is(err, ErrUnavailable) {
			t.Fatalf("sync during remote partition: %v, want ErrUnavailable", err)
		}
		st.Heal(1)
		if err := st.Sync(); err != nil {
			t.Fatalf("sync after heal: %v", err)
		}
		if n := flightsLen(st, 0); n != 0 {
			t.Fatalf("%d flights in flight after heal+sync", n)
		}
		if st.AckedCount(0) != len(st.shards[0].log) {
			t.Fatalf("shard 0 acked %d of %d after heal+sync", st.AckedCount(0), len(st.shards[0].log))
		}
	})
}
