package kv

import (
	"errors"
	"testing"

	"cxl0/internal/core"
)

func openTest(t *testing.T, cfg Config) *Store {
	t.Helper()
	st, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestBasicOps(t *testing.T) {
	for _, strat := range Strategies {
		t.Run(strat.String(), func(t *testing.T) {
			st := openTest(t, Config{Shards: 3, Capacity: 64, Strategy: strat, Batch: 4, Seed: 11, EvictEvery: 3})
			for k := core.Val(0); k < 20; k++ {
				ack, err := st.Put(k, k*10+1)
				if err != nil {
					t.Fatalf("put %d: %v", k, err)
				}
				if strat.Durable() && !ack.Durable {
					t.Fatalf("put %d not durable under %v", k, strat)
				}
			}
			if err := st.Sync(); err != nil {
				t.Fatal(err)
			}
			for k := core.Val(0); k < 20; k++ {
				v, ok, err := st.Get(k)
				if err != nil || !ok || v != k*10+1 {
					t.Fatalf("get %d = (%d, %v, %v), want (%d, true, nil)", k, v, ok, err, k*10+1)
				}
			}
			if _, ok, _ := st.Get(999); ok {
				t.Fatal("phantom key 999")
			}
			if _, err := st.Delete(7); err != nil {
				t.Fatal(err)
			}
			if err := st.Sync(); err != nil {
				t.Fatal(err)
			}
			if _, ok, _ := st.Get(7); ok {
				t.Fatal("key 7 survived delete")
			}
			pairs, err := st.Scan(5, 12, 0)
			if err != nil {
				t.Fatal(err)
			}
			want := []core.Val{5, 6, 8, 9, 10, 11}
			if len(pairs) != len(want) {
				t.Fatalf("scan [5,12) = %v, want keys %v", pairs, want)
			}
			for i, p := range pairs {
				if p.Key != want[i] || p.Val != want[i]*10+1 {
					t.Fatalf("scan pair %d = %+v, want key %d", i, p, want[i])
				}
			}
		})
	}
}

func TestBadArguments(t *testing.T) {
	st := openTest(t, Config{Shards: 1, Capacity: 8})
	if _, err := st.Put(-1, 5); !errors.Is(err, ErrBadKey) {
		t.Fatalf("negative key: %v", err)
	}
	if _, err := st.Put(1, 0); !errors.Is(err, ErrBadKey) {
		t.Fatalf("zero value: %v", err)
	}
	if _, _, err := st.Get(-2); !errors.Is(err, ErrBadKey) {
		t.Fatalf("negative get: %v", err)
	}
}

func TestShardFull(t *testing.T) {
	st := openTest(t, Config{Shards: 1, Capacity: 4, Strategy: MStoreEach})
	var lastErr error
	for k := core.Val(0); k < 10; k++ {
		_, lastErr = st.Put(k, 1)
		if lastErr != nil {
			break
		}
	}
	if !errors.Is(lastErr, ErrShardFull) {
		t.Fatalf("want ErrShardFull, got %v", lastErr)
	}
}

func TestDownShardRejectsOps(t *testing.T) {
	st := openTest(t, Config{Shards: 2, Capacity: 32, Strategy: MStoreEach})
	if _, err := st.Put(1, 10); err != nil {
		t.Fatal(err)
	}
	down := st.ShardOf(1)
	st.Crash(down)
	if _, _, err := st.Get(1); !errors.Is(err, ErrShardDown) {
		t.Fatalf("get on down shard: %v", err)
	}
	if _, err := st.Put(1, 11); !errors.Is(err, ErrShardDown) {
		t.Fatalf("put on down shard: %v", err)
	}
	if _, err := st.Scan(0, 100, 0); !errors.Is(err, ErrShardDown) {
		t.Fatalf("scan with down shard: %v", err)
	}
	stats, err := st.Recover(down)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Recovered == 0 && st.ShardOf(1) == down {
		t.Fatal("acknowledged record lost by recovery")
	}
	if v, ok, err := st.Get(1); err != nil || !ok || v != 10 {
		t.Fatalf("get after recovery = (%d, %v, %v)", v, ok, err)
	}
	if stats.SimNS <= 0 {
		t.Fatal("recovery consumed no simulated time")
	}
}

func TestGroupCommitAcksAtBatchBoundary(t *testing.T) {
	st := openTest(t, Config{Shards: 1, Capacity: 64, Strategy: GroupCommit, Batch: 4})
	for i := 0; i < 3; i++ {
		ack, err := st.Put(core.Val(i), 1)
		if err != nil {
			t.Fatal(err)
		}
		if ack.Durable {
			t.Fatalf("write %d acked before batch boundary", i)
		}
	}
	ack, err := st.Put(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !ack.Durable {
		t.Fatal("fourth write should close the batch")
	}
	if got := st.AckedCount(0); got != 4 {
		t.Fatalf("acked = %d, want 4", got)
	}
	m := st.Metrics()
	if m.Commits != 1 {
		t.Fatalf("commits = %d, want 1", m.Commits)
	}
}

func TestGroupCommitAmortizesGPF(t *testing.T) {
	run := func(strat Strategy) float64 {
		st := openTest(t, Config{Shards: 1, Capacity: 256, Strategy: strat, Batch: 16, Seed: 5})
		for k := core.Val(0); k < 128; k++ {
			if _, err := st.Put(k, k+1); err != nil {
				t.Fatal(err)
			}
		}
		if err := st.Sync(); err != nil {
			t.Fatal(err)
		}
		return st.Metrics().MaxBusyNS()
	}
	gpf := run(GPFEach)
	group := run(GroupCommit)
	if group >= gpf {
		t.Fatalf("group commit (%.0f sim-ns) not faster than per-op GPF (%.0f sim-ns)", group, gpf)
	}
}

// TestRangedCommitAcksAtBatchBoundary: RangedCommit follows the same ack
// discipline as GroupCommit — Durable only at the commit point.
func TestRangedCommitAcksAtBatchBoundary(t *testing.T) {
	st := openTest(t, Config{Shards: 1, Capacity: 64, Strategy: RangedCommit, Batch: 4})
	for i := 0; i < 3; i++ {
		ack, err := st.Put(core.Val(i), 1)
		if err != nil {
			t.Fatal(err)
		}
		if ack.Durable {
			t.Fatalf("write %d acked before batch boundary", i)
		}
		// Visible before durable, like an unflushed RStore'd value.
		if v, ok, err := st.Get(core.Val(i)); err != nil || !ok || v != 1 {
			t.Fatalf("pending write %d not visible: (%d, %v, %v)", i, v, ok, err)
		}
	}
	ack, err := st.Put(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !ack.Durable {
		t.Fatal("fourth write should close the batch")
	}
	if got := st.AckedCount(0); got != 4 {
		t.Fatalf("acked = %d, want 4", got)
	}
	if m := st.Metrics(); m.Commits != 1 {
		t.Fatalf("commits = %d, want 1", m.Commits)
	}
}

// TestRangedCommitChargesOnlyItsShard is the accounting half of the
// tentpole claim: a GroupCommit batch's GPF stalls every shard, while a
// RangedCommit batch's ranged flush lands on the committing shard alone.
func TestRangedCommitChargesOnlyItsShard(t *testing.T) {
	run := func(strat Strategy) Metrics {
		st := openTest(t, Config{Shards: 4, Capacity: 128, Strategy: strat, Batch: 4, Seed: 8})
		// Route every write to one shard so the other three shards perform
		// no operations of their own.
		target := st.ShardOf(0)
		wrote := 0
		for k := core.Val(0); wrote < 16; k++ {
			if st.ShardOf(k) != target {
				continue
			}
			if _, err := st.Put(k, k+1); err != nil {
				t.Fatal(err)
			}
			wrote++
		}
		if err := st.Sync(); err != nil {
			t.Fatal(err)
		}
		m := st.Metrics()
		if m.Commits == 0 {
			t.Fatalf("%v: no batches committed", strat)
		}
		// Idle-shard busy time is exactly the cross-charged commit cost.
		idle := 0.0
		for i, b := range m.PerShardBusyNS {
			if i != target {
				idle += b
			}
		}
		if strat == GroupCommit && idle == 0 {
			t.Fatalf("GroupCommit charged nothing to idle shards — GPF should stall the fabric")
		}
		if strat == RangedCommit && idle != 0 {
			t.Fatalf("RangedCommit charged %.0f sim-ns to idle shards — commits must be shard-local", idle)
		}
		return m
	}
	run(GroupCommit)
	run(RangedCommit)
}

// TestRangedCommitCostFlatInShardCount is the tentpole claim end to end: a
// GroupCommit batch's GPF is charged to every shard, so mean per-op cost
// grows linearly with shard count and batching gains stop scaling;
// RangedCommit's per-op cost does not depend on how many shards exist.
// (On very few shards GroupCommit can still win outright — a GPF costs the
// same no matter how large the batch's footprint is — the point is the
// scaling behaviour, not the single-shard constant.)
func TestRangedCommitCostFlatInShardCount(t *testing.T) {
	meanPerOp := func(strat Strategy, shards int) float64 {
		st := openTest(t, Config{Shards: shards, Capacity: 128, Strategy: strat, Batch: 8, Seed: 6})
		puts := 24 * shards
		for k := 0; k < puts; k++ {
			if _, err := st.Put(core.Val(k), core.Val(k+1)); err != nil {
				t.Fatal(err)
			}
		}
		if err := st.Sync(); err != nil {
			t.Fatal(err)
		}
		return st.Metrics().TotalBusyNS() / float64(puts)
	}
	group2, group12 := meanPerOp(GroupCommit, 2), meanPerOp(GroupCommit, 12)
	ranged2, ranged12 := meanPerOp(RangedCommit, 2), meanPerOp(RangedCommit, 12)
	if ranged12 > 1.2*ranged2 {
		t.Errorf("ranged per-op cost grew with shards: %.0f -> %.0f sim-ns", ranged2, ranged12)
	}
	if group12 < 2*group2 {
		t.Errorf("group per-op cost did not grow with shards: %.0f -> %.0f sim-ns", group2, group12)
	}
	if ranged12 >= group12 {
		t.Errorf("at 12 shards ranged commit (%.0f sim-ns/op) not below group commit (%.0f sim-ns/op)",
			ranged12, group12)
	}
}

// TestShardMapMigrateBucket covers the shard-map indirection end to end:
// migrating a bucket repoints routing, hands the index over, keeps every
// value readable, and reports itself in the metrics.
func TestShardMapMigrateBucket(t *testing.T) {
	st := openTest(t, Config{Shards: 3, Buckets: 12, Capacity: 64, Strategy: RangedCommit, Batch: 4, Seed: 7})
	for k := core.Val(0); k < 21; k++ {
		if _, err := st.Put(k, k*10+1); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}
	b := st.BucketOf(5)
	from := st.ShardOfBucket(b)
	to := (from + 1) % 3
	stats, err := st.MigrateBucket(b, to)
	if err != nil {
		t.Fatal(err)
	}
	if stats.From != from || stats.To != to || stats.Records < 1 || stats.SimNS <= 0 {
		t.Fatalf("migration stats %+v", stats)
	}
	for k := core.Val(0); k < 21; k++ {
		if st.BucketOf(k) == b && st.ShardOf(k) != to {
			t.Fatalf("key %d (bucket %d) still routes to shard %d", k, b, st.ShardOf(k))
		}
		v, ok, err := st.Get(k)
		if err != nil || !ok || v != k*10+1 {
			t.Fatalf("get %d after migration = (%d, %v, %v)", k, v, ok, err)
		}
		if st.BucketOf(k) == b {
			if _, stale := st.shards[from].index[k]; stale {
				t.Fatalf("key %d still indexed on source shard %d", k, from)
			}
		}
	}
	pairs, err := st.Scan(0, 100, 0)
	if err != nil || len(pairs) != 21 {
		t.Fatalf("scan after migration: %d pairs, %v", len(pairs), err)
	}
	// Migrating to the current owner is a no-op.
	if noop, err := st.MigrateBucket(b, to); err != nil || noop.Records != 0 {
		t.Fatalf("no-op migration = %+v, %v", noop, err)
	}
	m := st.Metrics()
	if m.Migrations != 1 || int(m.MigratedRecords) != stats.Records {
		t.Fatalf("metrics: %d migrations, %d records; want 1, %d",
			m.Migrations, m.MigratedRecords, stats.Records)
	}
}

// TestRebalanceShedsHotLoad drives two hot buckets that start on the same
// shard and checks that Rebalance splits them: the busy-share imbalance of
// the post-rebalance window must be strictly below the static one.
func TestRebalanceShedsHotLoad(t *testing.T) {
	st := openTest(t, Config{Shards: 4, Strategy: RangedCommit, Batch: 8, Capacity: 4096, Seed: 9, RebalanceThreshold: 1.1})
	// Two keys in different buckets served by the same shard.
	k1 := core.Val(0)
	k2 := core.Val(-1)
	for k := core.Val(1); k < 200; k++ {
		if st.ShardOf(k) == st.ShardOf(k1) && st.BucketOf(k) != st.BucketOf(k1) {
			k2 = k
			break
		}
	}
	if k2 < 0 {
		t.Fatal("no bucket pair found")
	}
	hammer := func() []float64 {
		for i := 0; i < 150; i++ {
			for _, k := range []core.Val{k1, k2} {
				if _, err := st.Put(k, core.Val(i)+1); err != nil {
					t.Fatal(err)
				}
				if _, _, err := st.Get(k); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := st.Sync(); err != nil {
			t.Fatal(err)
		}
		return st.Metrics().PerShardBusyNS
	}
	ratio := func(delta []float64) float64 {
		max, total := 0.0, 0.0
		for _, d := range delta {
			total += d
			if d > max {
				max = d
			}
		}
		return max / (total / float64(len(delta)))
	}
	window1 := hammer()
	moves, err := st.Rebalance()
	if err != nil {
		t.Fatal(err)
	}
	if len(moves) == 0 {
		t.Fatal("rebalance moved nothing off the hot shard")
	}
	if st.ShardOf(k1) == st.ShardOf(k2) {
		t.Fatalf("hot buckets still colocated on shard %d", st.ShardOf(k1))
	}
	base := st.Metrics().PerShardBusyNS
	window2 := hammer()
	delta := make([]float64, len(window2))
	for i := range delta {
		delta[i] = window2[i] - base[i]
	}
	if r1, r2 := ratio(window1), ratio(delta); r2 >= r1 {
		t.Fatalf("imbalance did not improve: %.2f static, %.2f rebalanced", r1, r2)
	}
}

// TestScanSkipsIdleDownShard: a scan must only fail when a down shard
// actually holds keys in the scanned range.
func TestScanSkipsIdleDownShard(t *testing.T) {
	st := openTest(t, Config{Shards: 2, Capacity: 32, Strategy: MStoreEach, Seed: 5})
	up := core.Val(0)
	down := core.Val(-1)
	for k := core.Val(1); k < 50; k++ {
		if st.ShardOf(k) != st.ShardOf(up) {
			down = k
			break
		}
	}
	if down < 0 {
		t.Fatal("no key pair on distinct shards")
	}
	for _, k := range []core.Val{up, down} {
		if _, err := st.Put(k, k+1); err != nil {
			t.Fatal(err)
		}
	}
	st.Crash(st.ShardOf(down))
	pairs, err := st.Scan(up, up+1, 0)
	if err != nil || len(pairs) != 1 || pairs[0].Key != up {
		t.Fatalf("scan of live shard's range = %v, %v; want just key %d", pairs, err, up)
	}
	if _, err := st.Scan(down, down+1, 0); !errors.Is(err, ErrShardDown) {
		t.Fatalf("scan touching the down shard: %v, want ErrShardDown", err)
	}
}

// TestAckedCountsCumulativeClientWrites pins the Metrics.Acked semantics:
// a cumulative acknowledged-client-write counter that neither recovery
// truncation nor migration bookkeeping can distort.
func TestAckedCountsCumulativeClientWrites(t *testing.T) {
	st := openTest(t, Config{Shards: 2, Buckets: 8, Capacity: 128, Strategy: GroupCommit, Batch: 4, Seed: 13})
	for k := core.Val(0); k < 10; k++ {
		if _, err := st.Put(k, k+1); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := st.Metrics().Acked; got != 10 {
		t.Fatalf("acked = %d after 10 synced puts", got)
	}
	// Migration copies records and appends move markers; none of that is
	// a client write.
	b := st.BucketOf(0)
	if _, err := st.MigrateBucket(b, 1-st.ShardOfBucket(b)); err != nil {
		t.Fatal(err)
	}
	m := st.Metrics()
	if m.Acked != 10 {
		t.Fatalf("migration changed Acked: %d", m.Acked)
	}
	if m.MigratedRecords == 0 {
		t.Fatal("migration copied nothing")
	}
	// Crash churn with pending writes: the counter must never go back.
	before := m.Acked
	for k := core.Val(20); k < 22; k++ {
		if _, err := st.Put(k, 5); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < st.NumShards(); i++ {
		st.Crash(i)
		if _, err := st.Recover(i); err != nil {
			t.Fatal(err)
		}
	}
	after := st.Metrics().Acked
	if after < before {
		t.Fatalf("acked went backwards across recovery: %d -> %d", before, after)
	}
	// Slot reuse after truncation keeps counting forward.
	for k := core.Val(30); k < 34; k++ {
		if _, err := st.Put(k, 6); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := st.Metrics().Acked; got != after+4 {
		t.Fatalf("acked = %d after 4 more synced puts, want %d", got, after+4)
	}
}

// TestRecoverDetectsDurabilityViolation: a checksum cut inside the
// acknowledged prefix is impossible while the strategies keep their
// contract, so Recover must report it instead of silently truncating
// acknowledged data.
func TestRecoverDetectsDurabilityViolation(t *testing.T) {
	st := openTest(t, Config{Shards: 1, Capacity: 32, Strategy: MStoreEach, Seed: 3})
	for k := core.Val(0); k < 5; k++ {
		if _, err := st.Put(k, k+1); err != nil {
			t.Fatal(err)
		}
	}
	// Corrupt an acknowledged record's checksum word behind the service's
	// back — simulated medium corruption.
	th, err := st.Cluster().NewThread(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := th.MStore(st.shards[0].chkLoc(2), 0); err != nil {
		t.Fatal(err)
	}
	st.Crash(0)
	if _, err := st.Recover(0); !errors.Is(err, ErrDurabilityViolation) {
		t.Fatalf("recover after corruption: %v, want ErrDurabilityViolation", err)
	}
}

func TestStrategyParsing(t *testing.T) {
	for _, s := range Strategies {
		got, err := ParseStrategy(s.String())
		if err != nil || got != s {
			t.Errorf("ParseStrategy(%q) = %v, %v", s.String(), got, err)
		}
	}
	if got, err := ParseStrategy(" RANGED "); err != nil || got != RangedCommit {
		t.Errorf("case/space-insensitive parse failed: %v, %v", got, err)
	}
	if _, err := ParseStrategy("turbo"); err == nil {
		t.Error("unknown strategy accepted")
	}
	if MStoreEach.Batched() || !RangedCommit.Batched() || !GroupCommit.Batched() {
		t.Error("Batched predicate wrong")
	}
	if RangedCommit.Durable() || GroupCommit.Durable() || !GPFEach.Durable() {
		t.Error("Durable predicate wrong")
	}
}

func TestColocatedWorkers(t *testing.T) {
	remote := openTest(t, Config{Shards: 1, Capacity: 128, Strategy: StoreFlush, Seed: 3})
	local := openTest(t, Config{Shards: 1, Capacity: 128, Strategy: StoreFlush, Seed: 3, Colocate: true})
	for _, st := range []*Store{remote, local} {
		for k := core.Val(0); k < 64; k++ {
			if _, err := st.Put(k, k+1); err != nil {
				t.Fatal(err)
			}
		}
	}
	if local.Metrics().MaxBusyNS() >= remote.Metrics().MaxBusyNS() {
		t.Fatalf("colocated StoreFlush (%.0f) should beat remote (%.0f): owner-local LFlush is cheaper",
			local.Metrics().MaxBusyNS(), remote.Metrics().MaxBusyNS())
	}
}
