package analysis

import (
	"fmt"
	"go/token"
	"unicode"
)

// Validate reports an error if any of the analyzers are misconfigured:
// a missing name or run function, a name that is not a valid identifier,
// a cycle in the Requires graph, or (in this subset) declared fact
// types, which are unsupported.
func Validate(analyzers []*Analyzer) error {
	const (
		white = iota
		grey
		black
	)
	color := map[*Analyzer]int{}
	var visit func(a *Analyzer) error
	visit = func(a *Analyzer) error {
		if a == nil {
			return fmt.Errorf("nil *Analyzer")
		}
		switch color[a] {
		case black:
			return nil
		case grey:
			return fmt.Errorf("cycle in Requires graph involving %q", a.Name)
		}
		color[a] = grey
		if !validIdent(a.Name) {
			return fmt.Errorf("invalid analyzer name %q", a.Name)
		}
		if a.Doc == "" {
			return fmt.Errorf("analyzer %q is undocumented", a.Name)
		}
		if a.Run == nil {
			return fmt.Errorf("analyzer %q has no Run function", a.Name)
		}
		if len(a.FactTypes) > 0 {
			return fmt.Errorf("analyzer %q declares facts, which this offline subset does not support", a.Name)
		}
		for _, req := range a.Requires {
			if err := visit(req); err != nil {
				return err
			}
		}
		color[a] = black
		return nil
	}
	for _, a := range analyzers {
		if err := visit(a); err != nil {
			return err
		}
	}
	return nil
}

func validIdent(name string) bool {
	for i, r := range name {
		if !unicode.IsLetter(r) && r != '_' && (i == 0 || !unicode.IsDigit(r)) {
			return false
		}
	}
	return name != "" && !token.Lookup(name).IsKeyword()
}
