package analysis

import "go/token"

// A Diagnostic is a message associated with a source location or range.
type Diagnostic struct {
	Pos      token.Pos
	End      token.Pos // optional
	Category string    // optional
	Message  string

	// URL is the optional location of a web page that explains the
	// diagnostic.
	URL string

	// SuggestedFixes is an optional list of fixes to address the problem.
	SuggestedFixes []SuggestedFix

	// Related contains optional secondary positions and messages.
	Related []RelatedInformation
}

// RelatedInformation contains information related to a diagnostic.
type RelatedInformation struct {
	Pos     token.Pos
	End     token.Pos
	Message string
}

// A SuggestedFix is a code change associated with a Diagnostic.
type SuggestedFix struct {
	Message   string
	TextEdits []TextEdit
}

// A TextEdit represents the replacement of the code between Pos and End
// with the new text.
type TextEdit struct {
	Pos     token.Pos
	End     token.Pos
	NewText []byte
}
