// Package analysistest provides utilities for testing analyzers. It
// loads fixture packages from a GOPATH-layout testdata/src tree and
// checks reported diagnostics against `// want "regexp"` expectation
// comments in the fixture sources.
package analysistest

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/internal/checker"
)

// TestData returns the effective filename of the program's "testdata"
// directory.
func TestData() string {
	testdata, err := filepath.Abs("testdata")
	if err != nil {
		panic(err)
	}
	return testdata
}

// Testing is an abstraction of a *testing.T.
type Testing interface {
	Errorf(format string, args ...interface{})
}

// A Result holds the result of applying an analyzer to a package.
type Result struct {
	Pass        *analysis.Pass
	Diagnostics []analysis.Diagnostic
	Result      interface{}
	Err         error
}

// Run applies an analyzer to the packages denoted by the patterns,
// loaded in GOPATH mode from dir (the fixture GOPATH: sources live
// under dir/src), and checks every diagnostic against the fixtures'
// `// want` expectations. Expectations in dependency packages not
// matched by the patterns are ignored, as upstream does.
func Run(t Testing, dir string, a *analysis.Analyzer, patterns ...string) []*Result {
	pkgs, err := checker.Load(checker.LoadConfig{
		Dir: filepath.Join(dir, "src"),
		Env: []string{
			"GOPATH=" + dir,
			"GO111MODULE=off",
			"GOFLAGS=",
			"GOPROXY=off",
		},
		Patterns: patterns,
	})
	if err != nil {
		t.Errorf("loading fixture packages %v from %s: %v", patterns, dir, err)
		return nil
	}
	if len(pkgs) == 0 {
		t.Errorf("no fixture packages matched %v in %s", patterns, dir)
		return nil
	}

	var results []*Result
	for _, pkg := range pkgs {
		diags, err := checker.Run([]*analysis.Analyzer{a}, []*checker.Package{pkg})
		res := &Result{Err: err}
		if err != nil {
			t.Errorf("analyzer %s on %s: %v", a.Name, pkg.ImportPath, err)
			results = append(results, res)
			continue
		}
		for _, d := range diags {
			res.Diagnostics = append(res.Diagnostics, d.Diagnostic)
		}
		check(t, pkg, res.Diagnostics)
		results = append(results, res)
	}
	return results
}

// expectation is one `// want` regexp, anchored to a file and line.
type expectation struct {
	re      *regexp.Regexp
	matched bool
}

type key struct {
	file string
	line int
}

// check compares diagnostics against the `// want` comments of the
// fixture package.
func check(t Testing, pkg *checker.Package, diags []analysis.Diagnostic) {
	expects := map[key][]*expectation{}
	for i, f := range pkg.Files {
		filename := pkg.GoFiles[i]
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := wantPayload(c.Text)
				if !ok {
					continue
				}
				posn := pkg.Fset.Position(c.Pos())
				res, err := parseExpectations(text)
				if err != nil {
					t.Errorf("%s:%d: invalid want comment: %v", filename, posn.Line, err)
					continue
				}
				k := key{filename, posn.Line}
				expects[k] = append(expects[k], res...)
			}
		}
	}

	for _, d := range diags {
		posn := pkg.Fset.Position(d.Pos)
		k := key{posn.Filename, posn.Line}
		matched := false
		for _, exp := range expects[k] {
			if !exp.matched && exp.re.MatchString(d.Message) {
				exp.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%v: unexpected diagnostic: %s", posn, d.Message)
		}
	}
	var keys []key
	for k := range expects {
		keys = append(keys, k)
	}
	sortKeys(keys)
	for _, k := range keys {
		for _, exp := range expects[k] {
			if !exp.matched {
				t.Errorf("%s:%d: no diagnostic was reported matching %q", k.file, k.line, exp.re.String())
			}
		}
	}
}

func sortKeys(keys []key) {
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && (keys[j].file < keys[j-1].file ||
			(keys[j].file == keys[j-1].file && keys[j].line < keys[j-1].line)); j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
}

// wantPayload extracts the text after the "want" keyword of an
// expectation comment, reporting whether the comment is one.
func wantPayload(comment string) (string, bool) {
	text := strings.TrimPrefix(comment, "//")
	if text == comment { // a /* */ comment
		text = strings.TrimSuffix(strings.TrimPrefix(comment, "/*"), "*/")
	}
	text = strings.TrimSpace(text)
	rest := strings.TrimPrefix(text, "want")
	if rest == text || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
		return "", false
	}
	return strings.TrimSpace(rest), true
}

// parseExpectations parses a sequence of quoted regexps: "..." (with Go
// escapes) or `...`.
func parseExpectations(text string) ([]*expectation, error) {
	var out []*expectation
	for text != "" {
		var lit string
		switch text[0] {
		case '"':
			end := 1
			for end < len(text) && (text[end] != '"' || text[end-1] == '\\') {
				end++
			}
			if end == len(text) {
				return nil, fmt.Errorf("unterminated %q", text)
			}
			unq, err := strconv.Unquote(text[:end+1])
			if err != nil {
				return nil, err
			}
			lit, text = unq, text[end+1:]
		case '`':
			end := strings.IndexByte(text[1:], '`')
			if end < 0 {
				return nil, fmt.Errorf("unterminated %q", text)
			}
			lit, text = text[1:1+end], text[end+2:]
		default:
			return nil, fmt.Errorf("expected quoted regexp, got %q", text)
		}
		re, err := regexp.Compile(lit)
		if err != nil {
			return nil, err
		}
		out = append(out, &expectation{re: re})
		text = strings.TrimSpace(text)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("want comment with no expectations")
	}
	return out, nil
}
