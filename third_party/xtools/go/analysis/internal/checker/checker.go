// Package checker is the shared loader and runner behind multichecker
// and analysistest. It enumerates packages with `go list -e -export
// -deps -json`, parses and type-checks the pattern-matched packages from
// source, and imports their dependencies from the compiler export data
// the same `go list -export` run produced — entirely offline, using the
// ordinary Go build cache.
package checker

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// A Package is one type-checked, pattern-matched package.
type Package struct {
	ImportPath   string
	Dir          string
	Fset         *token.FileSet
	Files        []*ast.File
	GoFiles      []string
	IgnoredFiles []string
	Types        *types.Package
	Info         *types.Info
	Sizes        types.Sizes
	TypeErrors   []types.Error
	Module       *analysis.Module
}

// LoadConfig configures Load.
type LoadConfig struct {
	// Dir is the directory `go list` runs in ("" = current directory).
	Dir string
	// Env entries are appended to os.Environ() for the `go list` run
	// (e.g. GOPATH-mode overrides for analysistest fixtures).
	Env []string
	// Patterns are the `go list` package patterns to analyze.
	Patterns []string
}

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath     string
	Name           string
	Dir            string
	GoFiles        []string
	IgnoredGoFiles []string
	Imports        []string
	ImportMap      map[string]string
	Export         string
	Standard       bool
	DepOnly        bool
	Module         *struct {
		Path      string
		Version   string
		GoVersion string
	}
	Error *struct {
		Err string
	}
}

// Load lists, parses and type-checks the packages matching
// cfg.Patterns. Dependencies are resolved from export data; only the
// matched packages themselves get syntax trees.
func Load(cfg LoadConfig) ([]*Package, error) {
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Name,Dir,GoFiles,IgnoredGoFiles,Imports,ImportMap,Export,Standard,DepOnly,Module,Error",
		"--",
	}, cfg.Patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = cfg.Dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	cmd.Env = append(cmd.Env, cfg.Env...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(cfg.Patterns, " "), err, stderr.String())
	}

	var all []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		lp := new(listPackage)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		all = append(all, lp)
	}

	// Export data index for the importer, spanning targets and deps.
	exports := make(map[string]string)
	for _, lp := range all {
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
	}
	fset := token.NewFileSet()
	base := newExportImporter(fset, exports)

	var pkgs []*Package
	for _, lp := range all {
		if lp.DepOnly || lp.Standard {
			continue
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("package %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if lp.Name == "" || len(lp.GoFiles) == 0 {
			continue // e.g. empty directory matched by a wildcard
		}
		pkg, err := typecheck(fset, base, lp)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].ImportPath < pkgs[j].ImportPath })
	return pkgs, nil
}

func typecheck(fset *token.FileSet, base *exportImporter, lp *listPackage) (*Package, error) {
	pkg := &Package{
		ImportPath: lp.ImportPath,
		Dir:        lp.Dir,
		Fset:       fset,
		Sizes:      types.SizesFor("gc", runtime.GOARCH),
	}
	for _, name := range lp.IgnoredGoFiles {
		pkg.IgnoredFiles = append(pkg.IgnoredFiles, filepath.Join(lp.Dir, name))
	}
	if lp.Module != nil {
		pkg.Module = &analysis.Module{Path: lp.Module.Path, Version: lp.Module.Version, GoVersion: lp.Module.GoVersion}
	}
	for _, name := range lp.GoFiles {
		path := filepath.Join(lp.Dir, name)
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %v", path, err)
		}
		pkg.Files = append(pkg.Files, f)
		pkg.GoFiles = append(pkg.GoFiles, path)
	}

	pkg.Info = &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Instances:  map[*ast.Ident]types.Instance{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{
		Importer: &mappedImporter{base: base, importMap: lp.ImportMap},
		Error: func(err error) {
			if te, ok := err.(types.Error); ok {
				pkg.TypeErrors = append(pkg.TypeErrors, te)
			}
		},
		Sizes: pkg.Sizes,
	}
	if pkg.Module != nil && pkg.Module.GoVersion != "" {
		conf.GoVersion = "go" + pkg.Module.GoVersion
	}
	tpkg, _ := conf.Check(lp.ImportPath, fset, pkg.Files, pkg.Info)
	pkg.Types = tpkg
	return pkg, nil
}

// exportImporter resolves imports from compiler export data files.
type exportImporter struct {
	gc types.ImporterFrom
}

func newExportImporter(fset *token.FileSet, exports map[string]string) *exportImporter {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	return &exportImporter{gc: importer.ForCompiler(fset, "gc", lookup).(types.ImporterFrom)}
}

// mappedImporter applies one package's ImportMap (vendoring, module
// replacement) before delegating to the shared export-data importer.
type mappedImporter struct {
	base      *exportImporter
	importMap map[string]string
}

func (m *mappedImporter) Import(path string) (*types.Package, error) {
	return m.ImportFrom(path, "", 0)
}

func (m *mappedImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if mapped, ok := m.importMap[path]; ok {
		path = mapped
	}
	return m.base.gc.ImportFrom(path, dir, 0)
}

// A Diagnostic pairs an analyzer finding with the package it was found
// in.
type Diagnostic struct {
	Pkg      *Package
	Analyzer *analysis.Analyzer
	analysis.Diagnostic
}

// Run applies each analyzer (and, first, its requirements) to each
// package and returns every diagnostic reported, in a stable
// file/position order.
func Run(analyzers []*analysis.Analyzer, pkgs []*Package) ([]Diagnostic, error) {
	if err := analysis.Validate(analyzers); err != nil {
		return nil, err
	}
	var diags []Diagnostic
	for _, pkg := range pkgs {
		results := map[*analysis.Analyzer]interface{}{}
		ran := map[*analysis.Analyzer]bool{}
		var exec func(a *analysis.Analyzer) error
		exec = func(a *analysis.Analyzer) error {
			if ran[a] {
				return nil
			}
			ran[a] = true
			for _, req := range a.Requires {
				if err := exec(req); err != nil {
					return err
				}
			}
			if len(pkg.TypeErrors) > 0 && !a.RunDespiteErrors {
				return fmt.Errorf("package %s has type errors (first: %v); analyzer %s cannot run",
					pkg.ImportPath, pkg.TypeErrors[0], a.Name)
			}
			pass := newPass(a, pkg, results, func(d analysis.Diagnostic) {
				diags = append(diags, Diagnostic{Pkg: pkg, Analyzer: a, Diagnostic: d})
			})
			res, err := a.Run(pass)
			if err != nil {
				return fmt.Errorf("analyzer %s on %s: %v", a.Name, pkg.ImportPath, err)
			}
			if a.ResultType != nil {
				results[a] = res
			}
			return nil
		}
		for _, a := range analyzers {
			if err := exec(a); err != nil {
				return nil, err
			}
		}
	}
	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := diags[i].Pkg.Fset.Position(diags[i].Pos), diags[j].Pkg.Fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return pi.Column < pj.Column
	})
	return diags, nil
}

// newPass assembles a Pass for one (analyzer, package) pair. The fact
// methods are inert stubs: Validate already rejected analyzers that
// declare fact types.
func newPass(a *analysis.Analyzer, pkg *Package, results map[*analysis.Analyzer]interface{}, report func(analysis.Diagnostic)) *analysis.Pass {
	resultOf := map[*analysis.Analyzer]interface{}{}
	for _, req := range a.Requires {
		resultOf[req] = results[req]
	}
	return &analysis.Pass{
		Analyzer:          a,
		Fset:              pkg.Fset,
		Files:             pkg.Files,
		IgnoredFiles:      pkg.IgnoredFiles,
		Pkg:               pkg.Types,
		TypesInfo:         pkg.Info,
		TypesSizes:        pkg.Sizes,
		TypeErrors:        pkg.TypeErrors,
		Module:            pkg.Module,
		Report:            report,
		ResultOf:          resultOf,
		ReadFile:          os.ReadFile,
		ImportObjectFact:  func(types.Object, analysis.Fact) bool { return false },
		ImportPackageFact: func(*types.Package, analysis.Fact) bool { return false },
		ExportObjectFact:  func(types.Object, analysis.Fact) {},
		ExportPackageFact: func(analysis.Fact) {},
		AllObjectFacts:    func() []analysis.ObjectFact { return nil },
		AllPackageFacts:   func() []analysis.PackageFact { return nil },
	}
}
