// Package analysis defines the interface between a modular static
// analysis and an analysis driver program. It is an API-compatible,
// offline subset of golang.org/x/tools/go/analysis — see
// third_party/xtools/README.md for what is and is not included.
package analysis

import (
	"flag"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"reflect"
)

// An Analyzer describes an analysis function and its options.
type Analyzer struct {
	// Name of the analyzer. Must be a valid Go identifier.
	Name string

	// Doc is the documentation for the analyzer. The first sentence is
	// its summary.
	Doc string

	// URL holds an optional link to the analyzer's documentation.
	URL string

	// Flags defines any flags accepted by the analyzer.
	Flags flag.FlagSet

	// Run applies the analyzer to a package.
	Run func(*Pass) (interface{}, error)

	// RunDespiteErrors allows the driver to invoke the analyzer even on
	// a package that contains type errors.
	RunDespiteErrors bool

	// Requires lists analyzers that must run before this one and whose
	// results are available to it via Pass.ResultOf.
	Requires []*Analyzer

	// ResultType is the type of the optional result of the Run function.
	ResultType reflect.Type

	// FactTypes must be empty in this subset: facts are not supported.
	FactTypes []Fact
}

func (a *Analyzer) String() string { return a.Name }

// A Pass provides information to an Analyzer's Run function about the
// package being analyzed, and provides operations for reporting
// diagnostics.
type Pass struct {
	Analyzer *Analyzer

	Fset         *token.FileSet
	Files        []*ast.File
	OtherFiles   []string
	IgnoredFiles []string
	Pkg          *types.Package
	TypesInfo    *types.Info
	TypesSizes   types.Sizes
	TypeErrors   []types.Error
	Module       *Module

	// Report emits a diagnostic about a problem in the package.
	Report func(Diagnostic)

	// ResultOf provides the inputs to this analysis that are required by
	// the Requires field: the results of those analyses on this package.
	ResultOf map[*Analyzer]interface{}

	// ReadFile returns the contents of the named file.
	ReadFile func(filename string) ([]byte, error)

	// Fact machinery: present for API compatibility, but inert — facts
	// are not supported by this subset (see third_party/xtools/README.md).
	ImportObjectFact  func(obj types.Object, fact Fact) bool
	ImportPackageFact func(pkg *types.Package, fact Fact) bool
	ExportObjectFact  func(obj types.Object, fact Fact)
	ExportPackageFact func(fact Fact)
	AllObjectFacts    func() []ObjectFact
	AllPackageFacts   func() []PackageFact
}

func (pass *Pass) String() string {
	return fmt.Sprintf("%s@%s", pass.Analyzer.Name, pass.Pkg.Path())
}

// Reportf is a helper that reports a Diagnostic with the given position
// and formatted message.
func (pass *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	pass.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Range is a source span, e.g. an ast.Node.
type Range interface {
	Pos() token.Pos
	End() token.Pos
}

// ReportRangef reports a Diagnostic spanning rng with a formatted message.
func (pass *Pass) ReportRangef(rng Range, format string, args ...interface{}) {
	pass.Report(Diagnostic{Pos: rng.Pos(), End: rng.End(), Message: fmt.Sprintf(format, args...)})
}

// Module describes the module to which the package being analyzed
// belongs.
type Module struct {
	Path      string
	Version   string
	GoVersion string
}

// A Fact is an intermediate analysis result. Unsupported in this subset.
type Fact interface {
	AFact()
}

// An ObjectFact is a (types.Object, Fact) pair.
type ObjectFact struct {
	Object types.Object
	Fact   Fact
}

// A PackageFact is a (*types.Package, Fact) pair.
type PackageFact struct {
	Package *types.Package
	Fact    Fact
}
