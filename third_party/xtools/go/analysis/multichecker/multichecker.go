// Package multichecker defines the main function for an analysis driver
// with several analyzers. The resulting binary runs standalone over
// package patterns:
//
//	cxl0-lint ./...
//
// and also speaks the `go vet -vettool` protocol: it answers the
// -V=full version handshake and the -flags query, and when invoked with
// a single *.cfg argument it analyzes the one package the config file
// describes, importing dependencies from the export data files `go vet`
// lists in the config.
package multichecker

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/internal/checker"
)

const (
	exitOK          = 0
	exitUsage       = 1
	exitDiagnostics = 3 // matches the upstream multichecker convention
)

// Main is the main function for a multi-analyzer driver.
func Main(analyzers ...*analysis.Analyzer) {
	progname := filepath.Base(os.Args[0])
	log.SetFlags(0)
	log.SetPrefix(progname + ": ")

	if err := analysis.Validate(analyzers); err != nil {
		log.Fatal(err)
	}

	versionFlag := flag.String("V", "", "print version and exit (go vet handshake)")
	flagsFlag := flag.Bool("flags", false, "print analyzer flags in JSON (go vet handshake)")
	jsonFlag := flag.Bool("json", false, "emit JSON output")
	for _, a := range analyzers {
		a.Flags.VisitAll(func(f *flag.Flag) {
			flag.Var(f.Value, a.Name+"."+f.Name, f.Usage)
		})
	}
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "%s is a tool for static analysis of Go programs.\n\n", progname)
		fmt.Fprintf(os.Stderr, "Usage: %s [flags] packages...\n\nRegistered analyzers:\n\n", progname)
		for _, a := range analyzers {
			fmt.Fprintf(os.Stderr, "    %-16s %s\n", a.Name, strings.SplitN(a.Doc, "\n", 2)[0])
		}
		fmt.Fprintln(os.Stderr, "\nFlags:")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *versionFlag != "" {
		// `go vet -vettool` probes the tool with -V=full and parses the
		// reply's last field as the tool's content ID, so it must carry a
		// buildID token that changes when the binary does. Upstream hashes
		// the executable; do the same.
		fmt.Printf("%s version devel comments-go-here buildID=%s\n", progname, executableHash())
		os.Exit(exitOK)
	}
	if *flagsFlag {
		// `go vet` asks which flags the tool supports; none need to be
		// forwarded, so report an empty list.
		fmt.Println("[]")
		os.Exit(exitOK)
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(runVetConfig(analyzers, args[0], *jsonFlag))
	}
	if len(args) == 0 {
		flag.Usage()
		os.Exit(exitUsage)
	}

	pkgs, err := checker.Load(checker.LoadConfig{Patterns: args})
	if err != nil {
		log.Fatal(err)
	}
	diags, err := checker.Run(analyzers, pkgs)
	if err != nil {
		log.Fatal(err)
	}
	if *jsonFlag {
		printJSON(os.Stdout, diags)
		os.Exit(exitOK)
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s (%s)\n", relPosition(d.Pkg.Fset, d.Pos), d.Message, d.Analyzer.Name)
	}
	if len(diags) > 0 {
		os.Exit(exitDiagnostics)
	}
	os.Exit(exitOK)
}

func relPosition(fset *token.FileSet, pos token.Pos) string {
	p := fset.Position(pos)
	if wd, err := os.Getwd(); err == nil {
		if rel, err := filepath.Rel(wd, p.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			p.Filename = rel
		}
	}
	return p.String()
}

// printJSON emits diagnostics in the nested package/analyzer shape `go
// vet -json` uses.
func printJSON(w io.Writer, diags []checker.Diagnostic) {
	type jsonDiag struct {
		Posn    string `json:"posn"`
		Message string `json:"message"`
	}
	tree := map[string]map[string][]jsonDiag{}
	for _, d := range diags {
		byAnalyzer, ok := tree[d.Pkg.ImportPath]
		if !ok {
			byAnalyzer = map[string][]jsonDiag{}
			tree[d.Pkg.ImportPath] = byAnalyzer
		}
		byAnalyzer[d.Analyzer.Name] = append(byAnalyzer[d.Analyzer.Name], jsonDiag{
			Posn:    d.Pkg.Fset.Position(d.Pos).String(),
			Message: d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "\t")
	enc.Encode(tree)
}

// vetConfig is the JSON schema of the config file `go vet` hands the
// tool for each package.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runVetConfig analyzes the single package described by a `go vet`
// config file and returns the process exit code.
func runVetConfig(analyzers []*analysis.Analyzer, cfgFile string, asJSON bool) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		log.Print(err)
		return exitUsage
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		log.Printf("cannot decode vet config %s: %v", cfgFile, err)
		return exitUsage
	}

	// This subset computes no facts, but `go vet` requires the output
	// file to exist before it will cache the action.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("cxl0-lint: no facts\n"), 0o666); err != nil {
			log.Print(err)
			return exitUsage
		}
	}
	if cfg.VetxOnly {
		return exitOK
	}

	fset := token.NewFileSet()
	pkg := &checker.Package{
		ImportPath: cfg.ImportPath,
		Dir:        cfg.Dir,
		Fset:       fset,
		Sizes:      types.SizesFor("gc", runtime.GOARCH),
	}
	pkg.IgnoredFiles = append(pkg.IgnoredFiles, cfg.IgnoredFiles...)
	for _, path := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return exitOK
			}
			log.Print(err)
			return exitUsage
		}
		pkg.Files = append(pkg.Files, f)
		pkg.GoFiles = append(pkg.GoFiles, path)
	}

	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	pkg.Info = &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Instances:  map[*ast.Ident]types.Instance{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	tconf := types.Config{
		Importer:  importer.ForCompiler(fset, "gc", lookup),
		GoVersion: cfg.GoVersion,
		Sizes:     pkg.Sizes,
		Error: func(err error) {
			if te, ok := err.(types.Error); ok {
				pkg.TypeErrors = append(pkg.TypeErrors, te)
			}
		},
	}
	pkg.Types, _ = tconf.Check(cfg.ImportPath, fset, pkg.Files, pkg.Info)
	if len(pkg.TypeErrors) > 0 && cfg.SucceedOnTypecheckFailure {
		return exitOK
	}

	diags, err := checker.Run(analyzers, []*checker.Package{pkg})
	if err != nil {
		log.Print(err)
		return exitUsage
	}
	if asJSON {
		printJSON(os.Stdout, diags)
		return exitOK
	}
	sort.SliceStable(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s\n", fset.Position(d.Pos), d.Message)
	}
	if len(diags) > 0 {
		return 2 // the unitchecker diagnostic exit code `go vet` expects
	}
	return exitOK
}

// executableHash returns a hex digest of the running binary, the
// content ID the -V=full handshake reports: `go vet` caches vet results
// keyed on it, so it must change exactly when the tool binary does.
func executableHash() string {
	path, err := os.Executable()
	if err != nil {
		path = os.Args[0]
	}
	f, err := os.Open(path)
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown"
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}
