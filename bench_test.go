// Package cxl0bench is the top-level benchmark harness: one benchmark per
// table and figure of the paper's evaluation, regenerating the artifact and
// reporting its headline numbers as benchmark metrics.
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// The benchmarks are verification harnesses as much as performance
// measurements: each one recomputes its experiment from scratch per
// iteration, so ns/op tracks the cost of full regeneration, and the
// reported custom metrics carry the experiment's results (latencies in
// simulated nanoseconds, agreement counts, throughput in simulated time).
package cxl0bench

import (
	"fmt"
	"testing"

	"cxl0/internal/core"
	"cxl0/internal/crashtest"
	"cxl0/internal/cxlsim"
	"cxl0/internal/explore"
	"cxl0/internal/flit"
	"cxl0/internal/flitbench"
	"cxl0/internal/kv"
	"cxl0/internal/latency"
	"cxl0/internal/litmus"
	"cxl0/internal/workload"
)

// BenchmarkFigure3Litmus regenerates the Figure 3 verdicts (litmus tests
// 1–9) by exhaustive trace exploration and reports agreement with the
// paper.
func BenchmarkFigure3Litmus(b *testing.B) {
	agree := 0
	for i := 0; i < b.N; i++ {
		agree = 0
		for _, r := range litmus.RunAll(litmus.Figure3()) {
			if r.Agrees() {
				agree++
			}
		}
	}
	b.ReportMetric(float64(agree), "verdicts-agree")
	b.ReportMetric(9, "verdicts-total")
	if agree != 9 {
		b.Fatalf("only %d/9 Figure 3 verdicts agree", agree)
	}
}

// BenchmarkVariantTriples regenerates the §3.5 variant comparison table
// (tests 10–12 under CXL0, CXL0-LWB, CXL0-PSN).
func BenchmarkVariantTriples(b *testing.B) {
	agree := 0
	for i := 0; i < b.N; i++ {
		agree = 0
		for _, r := range litmus.RunAll(litmus.VariantTests()) {
			if r.Agrees() {
				agree++
			}
		}
	}
	b.ReportMetric(float64(agree), "verdicts-agree")
	b.ReportMetric(9, "verdicts-total") // 3 tests × 3 variants
	if agree != 9 {
		b.Fatalf("only %d/9 variant verdicts agree", agree)
	}
}

// BenchmarkMotivatingExample explores the §6 motivating program (the
// assert(r1==r2) anomaly and its two repairs).
func BenchmarkMotivatingExample(b *testing.B) {
	ok := true
	for i := 0; i < b.N; i++ {
		ok = !litmus.MotivatingAssertionHolds(core.OpLStore, false) &&
			litmus.MotivatingAssertionHolds(core.OpMStore, false) &&
			litmus.MotivatingAssertionHolds(core.OpLStore, true)
	}
	if !ok {
		b.Fatal("motivating-example verdicts diverged from the paper")
	}
}

// BenchmarkProposition1 re-verifies the eight reach-set inclusions of
// Proposition 1 on a fixed state family (the exhaustive check lives in the
// explore package's tests; this tracks its cost).
func BenchmarkProposition1(b *testing.B) {
	topo := core.NewTopology()
	m0 := topo.AddMachine("m1", core.NonVolatile)
	m1 := topo.AddMachine("m2", core.NonVolatile)
	x := topo.AddLoc("x", m0)
	topo.AddLoc("y", m1)
	s := core.NewState(topo)
	s.SetCache(1, x, 1)

	for i := 0; i < b.N; i++ {
		lhs := explore.ReachVia(s, core.Base, core.MStoreL(m1, x, 1))
		rhs := explore.ReachVia(s, core.Base, core.RStoreL(m1, x, 1))
		if !explore.Subset(lhs, rhs) {
			b.Fatal("Proposition 1(3) violated")
		}
	}
}

// BenchmarkTable1TxnMap regenerates Table 1 (the CXL transaction → CXL0
// primitive mapping) and reports cell agreement with the paper.
func BenchmarkTable1TxnMap(b *testing.B) {
	agree, total := 0, 0
	for i := 0; i < b.N; i++ {
		agree, total = 0, 0
		paper := cxlsim.PaperTable1()
		for _, cell := range cxlsim.GenerateTable1() {
			exp, ok := paper[cell.CellKey()]
			if !ok {
				continue
			}
			total++
			if cell.Available && fmt.Sprint(cell.Observed) == fmt.Sprint(exp) {
				agree++
			}
		}
	}
	b.ReportMetric(float64(agree), "cells-agree")
	b.ReportMetric(float64(total), "cells-total")
	if agree != total {
		b.Fatalf("Table 1: only %d/%d cells agree", agree, total)
	}
}

// BenchmarkFigure5Latency regenerates Figure 5 (median latency of every
// CXL0 primitive per access class, 1000 samples per bar) and reports the
// headline medians.
func BenchmarkFigure5Latency(b *testing.B) {
	m := latency.NewModel()
	var cells []latency.Figure5Cell
	for i := 0; i < b.N; i++ {
		cells = Figure5Once(m)
	}
	for _, c := range cells {
		if !c.Measurable {
			continue
		}
		switch {
		case c.Class == latency.HostToHM && c.Prim == cxlsim.PRead:
			b.ReportMetric(c.MedianNS, "host-local-read-ns")
		case c.Class == latency.HostToHDM && c.Prim == cxlsim.PRead:
			b.ReportMetric(c.MedianNS, "host-remote-read-ns")
		case c.Class == latency.DevToHM && c.Prim == cxlsim.PMStore:
			b.ReportMetric(c.MedianNS, "dev-mstore-hm-ns")
		}
	}
}

// Figure5Once regenerates all thirty bars once.
func Figure5Once(m *latency.Model) []latency.Figure5Cell {
	return latency.Figure5(m, 1000)
}

// BenchmarkDurableLinearizability runs one crash-injected workload +
// durable-linearizability check per iteration (the §6 experiment).
func BenchmarkDurableLinearizability(b *testing.B) {
	violations := 0
	for i := 0; i < b.N; i++ {
		r := crashtest.Run(crashtest.Options{
			Structure: crashtest.StructQueue,
			Strategy:  flit.CXL0FliT,
			Crash:     crashtest.CrashMemoryHost,
			Seed:      int64(i + 1),
		})
		if r.Err != nil {
			b.Fatal(r.Err)
		}
		if !r.Linearizable {
			violations++
		}
	}
	b.ReportMetric(float64(violations), "violations")
	if violations != 0 {
		b.Fatalf("%d durable-linearizability violations under the sound strategy", violations)
	}
}

// benchStrategy measures one persistence strategy's simulated cost on one
// workload, reporting sim-ns/op (the §6.1 comparison).
func benchStrategy(b *testing.B, w flitbench.Workload, s flit.Strategy, p flitbench.Placement) {
	b.Helper()
	var last flitbench.Stats
	for i := 0; i < b.N; i++ {
		st, err := flitbench.Run(flitbench.Config{Workload: w, Strategy: s, Placement: p, Ops: 500, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		last = st
	}
	b.ReportMetric(last.SimNSPerOp, "sim-ns/op")
}

func BenchmarkFliTQueueRemote(b *testing.B) {
	for _, s := range flit.Strategies {
		b.Run(s.String(), func(b *testing.B) {
			benchStrategy(b, flitbench.QueuePingPong, s, flitbench.Remote)
		})
	}
}

func BenchmarkFliTMapReadMostlyRemote(b *testing.B) {
	for _, s := range flit.Strategies {
		b.Run(s.String(), func(b *testing.B) {
			benchStrategy(b, flitbench.MapReadMostly, s, flitbench.Remote)
		})
	}
}

func BenchmarkFliTMapWriteHeavyRemote(b *testing.B) {
	for _, s := range flit.Strategies {
		b.Run(s.String(), func(b *testing.B) {
			benchStrategy(b, flitbench.MapWriteHeavy, s, flitbench.Remote)
		})
	}
}

func BenchmarkFliTQueueLocal(b *testing.B) {
	for _, s := range []flit.Strategy{flit.CXL0FliT, flit.CXL0FliTOpt, flit.MStoreAll} {
		b.Run(s.String(), func(b *testing.B) {
			benchStrategy(b, flitbench.QueuePingPong, s, flitbench.Local)
		})
	}
}

// benchKVWorkload runs one KV-service workload configuration per
// iteration and reports its simulated throughput and tail latency.
func benchKVWorkload(b *testing.B, name string, strat kv.Strategy, shards int) {
	b.Helper()
	spec, err := workload.YCSB(name)
	if err != nil {
		b.Fatal(err)
	}
	spec.Keys = 120
	var last workload.Result
	for i := 0; i < b.N; i++ {
		last, err = workload.Run(workload.Options{
			Spec:       spec,
			Store:      kv.Config{Shards: shards, Strategy: strat, Batch: 16, EvictEvery: 8},
			Ops:        400,
			CrashEvery: 150,
			Seed:       1,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(last.ThroughputOpsPerSec, "sim-ops/sec")
	b.ReportMetric(last.P99NS, "p99-sim-ns")
	if last.Recoveries == 0 {
		b.Fatal("crash churn produced no recoveries")
	}
}

// BenchmarkKVWorkloadA measures the update-heavy YCSB-A mix across
// persistence strategies on the sharded KV service.
func BenchmarkKVWorkloadA(b *testing.B) {
	for _, s := range kv.Strategies {
		b.Run(s.String(), func(b *testing.B) {
			benchKVWorkload(b, "A", s, 2)
		})
	}
}

// BenchmarkKVWorkloadE measures the scan-heavy YCSB-E mix.
func BenchmarkKVWorkloadE(b *testing.B) {
	for _, s := range []kv.Strategy{kv.MStoreEach, kv.GPFEach, kv.GroupCommit} {
		b.Run(s.String(), func(b *testing.B) {
			benchKVWorkload(b, "E", s, 2)
		})
	}
}

// BenchmarkKVGroupCommit verifies and tracks the headline batching claim:
// group commit beats per-op GPF on simulated throughput.
func BenchmarkKVGroupCommit(b *testing.B) {
	spec, err := workload.YCSB("A")
	if err != nil {
		b.Fatal(err)
	}
	spec.Keys = 120
	run := func(s kv.Strategy) workload.Result {
		res, err := workload.Run(workload.Options{
			Spec:  spec,
			Store: kv.Config{Shards: 2, Strategy: s, Batch: 16},
			Ops:   400,
			Seed:  2,
		})
		if err != nil {
			b.Fatal(err)
		}
		return res
	}
	var speedup float64
	for i := 0; i < b.N; i++ {
		speedup = run(kv.GroupCommit).ThroughputOpsPerSec / run(kv.GPFEach).ThroughputOpsPerSec
	}
	b.ReportMetric(speedup, "group-vs-gpf-speedup")
	if speedup <= 1 {
		b.Fatalf("group commit speedup %.2fx <= 1x over per-op GPF", speedup)
	}
}

// BenchmarkKVPooledClusters verifies and tracks the multi-cluster
// pooling claim: the same traffic over 4 pooled clusters (behind the
// pool.Router, driven through the kv.DB interface) beats the 1-cluster
// makespan.
func BenchmarkKVPooledClusters(b *testing.B) {
	spec, err := workload.YCSB("A")
	if err != nil {
		b.Fatal(err)
	}
	spec.Keys = 120
	run := func(clusters int) workload.Result {
		res, err := workload.Run(workload.Options{
			Spec:     spec,
			Store:    kv.Config{Shards: 2, Strategy: kv.RangedCommit, Batch: 16},
			Clusters: clusters,
			Ops:      400,
			Seed:     5,
		})
		if err != nil {
			b.Fatal(err)
		}
		return res
	}
	var speedup float64
	for i := 0; i < b.N; i++ {
		speedup = run(4).ThroughputOpsPerSec / run(1).ThroughputOpsPerSec
	}
	b.ReportMetric(speedup, "pooled-4cl-speedup")
	if speedup <= 1 {
		b.Fatalf("4-cluster pool speedup %.2fx <= 1x over one cluster", speedup)
	}
}

// BenchmarkKVRecovery tracks shard crash-recovery time on the simulated
// clock.
func BenchmarkKVRecovery(b *testing.B) {
	spec, err := workload.YCSB("B")
	if err != nil {
		b.Fatal(err)
	}
	spec.Keys = 200
	var last workload.Result
	for i := 0; i < b.N; i++ {
		last, err = workload.Run(workload.Options{
			Spec:       spec,
			Store:      kv.Config{Shards: 2, Strategy: kv.GroupCommit, Batch: 16, EvictEvery: 6},
			Ops:        600,
			CrashEvery: 200,
			Seed:       3,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(last.Recoveries), "recoveries")
	b.ReportMetric(last.RecoveryMeanNS, "recovery-mean-sim-ns")
	b.ReportMetric(last.RecoveryMaxNS, "recovery-max-sim-ns")
	if last.Recoveries == 0 || last.RecoveryMeanNS <= 0 {
		b.Fatal("no recovery times recorded")
	}
}

// BenchmarkModelStep measures raw LTS stepping (Apply + τ enumeration), the
// substrate cost under everything else.
func BenchmarkModelStep(b *testing.B) {
	topo := core.NewTopology()
	m0 := topo.AddMachine("m1", core.NonVolatile)
	m1 := topo.AddMachine("m2", core.NonVolatile)
	x := topo.AddLoc("x", m0)
	topo.AddLoc("y", m1)
	s := core.NewState(topo)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := core.Apply(s, core.LStoreL(m1, x, core.Val(i%7)), core.Base)
		s = out[0]
		if steps := core.TauSteps(s); len(steps) > 0 {
			s = core.ApplyTau(s, steps[0])
		}
	}
}

// BenchmarkTraceCheck measures litmus-style trace admissibility checking.
func BenchmarkTraceCheck(b *testing.B) {
	tests := litmus.Figure3()
	for i := 0; i < b.N; i++ {
		t := tests[i%len(tests)]
		t.Run(core.Base)
	}
}

// BenchmarkAblationEviction measures the eviction-pressure sensitivity of
// the sound strategies (DESIGN.md ablation).
func BenchmarkAblationEviction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := flitbench.EvictionAblation(
			[]flit.Strategy{flit.CXL0FliT, flit.MStoreAll}, []int{0, 8, 1}, 300)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range points {
			if p.EvictEvery == 1 && p.Strategy == flit.CXL0FliT {
				b.ReportMetric(p.SimNSPerOp, "flit-evict1-sim-ns/op")
			}
		}
	}
}

// BenchmarkAblationPlacementMix measures the §6.1 local/remote crossover.
func BenchmarkAblationPlacementMix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := flitbench.PlacementMixAblation(
			[]flit.Strategy{flit.CXL0FliT, flit.CXL0FliTOpt}, []int{0, 100}, 500)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range points {
			if p.LocalPercent == 100 && p.Strategy == flit.CXL0FliTOpt {
				b.ReportMetric(p.SimNSPerOp, "opt-local-sim-ns/op")
			}
		}
	}
}

// BenchmarkAblationCounterTable measures FliT counter-table false sharing.
func BenchmarkAblationCounterTable(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := flitbench.CounterTableAblation([]int{1, 128}, 128)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(points[0].HelpedLoads), "helped-loads-size1")
		b.ReportMetric(float64(points[1].HelpedLoads), "helped-loads-size128")
	}
}
